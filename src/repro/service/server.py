"""Sweep service daemon: ``repro serve``.

Promotes the crash-proof sweep harness into long-running infrastructure.
Architecture, front to back:

* an **asyncio HTTP/JSON front** (:class:`ServiceServer`) — a minimal
  stdlib HTTP/1.1 loop over ``asyncio.start_server``, one JSON response
  per connection; long-polls park in ``asyncio.to_thread`` so they never
  block the event loop; request bodies are bounded (413 past
  :data:`~repro.service.protocol.MAX_BODY_BYTES`);
* an **admission controller** (:mod:`repro.service.overload`) — bounded
  queue depth and per-client in-flight caps; under pressure
  low-criticality submissions are shed first (``429 + Retry-After``,
  deterministic seeded decisions) while high-criticality jobs are
  admitted until a hard ceiling;
* the **service core** (:class:`SweepService`) — thread-safe job/cell
  bookkeeping: submissions expand to content-addressed cells, identical
  in-flight cells from different clients collapse onto one
  :class:`_CellTask` (simulated exactly once), warm cells are answered
  from the :class:`~repro.harness.cache.ResultCache` in O(1) with no
  simulation, and a :class:`~repro.service.fairness.FairScheduler`
  enforces per-client concurrency shares;
* the **worker tier** — one background thread draining fair batches
  through an unmodified :class:`~repro.harness.executor.SweepExecutor`
  (same retries, timeouts, pool recovery, journal), so service results
  are bitwise-identical to the single-process CLI path.  A watchdog
  rebuilds the worker thread if it dies or hangs (mirroring the
  executor's own stuck-pool recovery, one layer up).

Durability: submissions are appended (fsynced) to ``<state>/jobs.jsonl``
before they are acknowledged, completed cells land in the result cache
and the fsynced sweep journal.  A SIGKILLed daemon therefore restarts by
replaying ``jobs.jsonl``: finished cells resolve instantly from the cache
(counted as *resumed* when the journal vouches for them) and only
genuinely unfinished cells are re-simulated.  SIGTERM (or
``POST /v1/admin/drain``) is the *graceful* path: admissions stop (503),
the in-flight batch finishes and checkpoints, and the daemon exits within
a drain deadline — anything still queued resumes on the next start.
"""

from __future__ import annotations

import asyncio
import json
import os
import sys
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Optional
from urllib.parse import parse_qs, urlsplit

from ..harness.cache import ResultCache
from ..harness.executor import CellSpec, RetryPolicy, SweepExecutor, SweepStats
from ..harness.journal import SweepJournal
from ..runtime.system import RunResult
from ..sim.config import MachineConfig
from ..sim.serialize import result_to_dict
from .fairness import DEFAULT_SHARE, FairScheduler
from .overload import (
    AdmissionController,
    DrainingError,
    OverloadedError,
    OverloadPolicy,
    criticality_of,
)
from .protocol import (
    DEFAULT_HOST,
    DEFAULT_PORT,
    MAX_BODY_BYTES,
    PROTOCOL_VERSION,
    ProtocolError,
    expand_submit,
    result_fingerprint,
    spec_from_dict,
    spec_to_dict,
)

__all__ = [
    "SweepService",
    "ServiceServer",
    "ServiceShutdownError",
    "serve",
]

_PENDING = "pending"
_RUNNING = "running"
_DONE = "done"
_FAILED = "failed"


class ServiceShutdownError(RuntimeError):
    """The worker tier failed to stop within the drain deadline.

    Raised (after logging) instead of silently returning: a worker thread
    that outlives ``stop()`` is still mutating state the caller believes
    quiesced, and the exit code must say so.
    """


@dataclass
class _CellTask:
    """One unique in-flight cell, shared by every job that requested it."""

    spec: CellSpec
    key: str
    state: str = _PENDING
    #: Simulation seconds (0.0 when served from cache).
    seconds: float = 0.0
    #: Resolved from the warm cache, no simulation on behalf of anyone.
    from_cache: bool = False
    #: Vouched for by the sweep journal of an earlier daemon life.
    resumed: bool = False
    error: str = ""
    #: Client whose submission first enqueued the cell (in-flight
    #: accounting for the admission controller's per-client cap).
    client: str = ""
    #: Jobs subscribed for completion accounting (only those that were
    #: waiting on this cell at submit time; warm hits never subscribe).
    jobs: set[str] = field(default_factory=set)


@dataclass
class _Job:
    """One accepted submission."""

    job_id: str
    client: str
    #: Unique cell keys, submission order.
    keys: list[str]
    #: Requested cells including duplicates within the submission.
    requested: int
    #: Duplicates inside this submission (resolved once, fanned out).
    deduped: int = 0
    #: Cells already resolved when the job arrived (warm cache / an
    #: earlier job's finished work).
    cached_at_submit: int = 0
    #: Cells that were already queued or running for another client when
    #: this job arrived — deduplicated in flight, simulated exactly once.
    attached: int = 0
    #: Cells vouched for by the journal of a previous daemon life.
    resumed: int = 0
    #: Cells simulated after this job subscribed to them.
    simulated: int = 0
    #: Cells that resolved from cache after subscription (rare: another
    #: batch finished them between submit and dispatch).
    cached_after_submit: int = 0
    #: Keys already resolved when this job arrived — from this job's point
    #: of view they were served from the warm cache, whatever first
    #: resolved them.
    pre_resolved: set[str] = field(default_factory=set)


class SweepService:
    """Thread-safe core of the sweep daemon (usable without HTTP).

    Four kinds of threads share this object: ``asyncio.to_thread``
    handler threads (submit/status/fetch/drain), the dedicated
    sweep-worker thread, the watchdog thread, and executor callbacks
    (``_on_cell_complete``).  The lock discipline below is
    machine-checked by ``repro check`` (CONC2xx):

    @guarded_by("_cond"): _tasks, _jobs, _job_seq, scheduler, admission
    @guarded_by("_cond"): _draining, _idempotency, _client_inflight
    @guarded_by("_cond"): _worker, _worker_gen, _worker_heartbeat
    @guarded_by("_cond"): executor, journal, _stats_base, worker_rebuilds
    @guarded_by("_log_lock"): _jobs_log

    ``_log_lock`` serializes the fsynced ``jobs.jsonl`` appends without
    stalling the service under ``_cond`` for the disk; it is never held
    together with ``_cond`` (submit releases ``_cond`` before logging),
    so no lock ordering exists between them.
    """

    def __init__(
        self,
        state_dir: str,
        jobs: int = 1,
        retry: Optional[RetryPolicy] = None,
        machine: Optional[MachineConfig] = None,
        shares: Optional[dict[str, int]] = None,
        default_share: int = DEFAULT_SHARE,
        overload: Optional[OverloadPolicy] = None,
        drain_grace_s: float = 30.0,
        watchdog_interval_s: float = 1.0,
        worker_hang_timeout_s: Optional[float] = None,
        verbose: bool = False,
    ) -> None:
        self.state_dir = state_dir
        os.makedirs(state_dir, exist_ok=True)
        cache_dir = os.path.join(state_dir, "cache")
        self.cache = ResultCache(cache_dir)
        self.machine = machine
        self.verbose = verbose
        self._jobs_n = jobs
        self._retry = retry
        self._journal_path = os.path.join(cache_dir, "journal.jsonl")
        self.journal = SweepJournal(self._journal_path)
        self.executor = self._build_executor(self.journal)
        self.scheduler = FairScheduler(default_share=default_share, shares=shares)
        self.admission = AdmissionController(overload)
        #: Worker join deadline for ``stop()``/drain.
        self.drain_grace_s = drain_grace_s
        self.watchdog_interval_s = watchdog_interval_s
        #: Heartbeat staleness past which a busy worker counts as hung
        #: and is abandoned + rebuilt; ``None`` disables hang rebuilds
        #: (the executor's per-cell timeouts remain the first line of
        #: defense against stuck pools).
        self.worker_hang_timeout_s = worker_hang_timeout_s
        #: Cells per worker batch: mirrors the executor's oversubscription
        #: window so the pool stays fed, small enough that fairness and
        #: in-flight dedup re-evaluate frequently.
        self.batch_size = max(2 * jobs, 4)
        self._cond = threading.Condition()
        self._tasks: dict[str, _CellTask] = {}
        self._jobs: dict[str, _Job] = {}
        self._job_seq = 1
        self._draining = False
        #: idempotency_key -> job id, for exactly-once client re-submits.
        self._idempotency: dict[str, str] = {}
        #: Unresolved (queued or running) cells per submitting client.
        self._client_inflight: dict[str, int] = {}
        self._jobs_log_path = os.path.join(state_dir, "jobs.jsonl")
        self._log_lock = threading.Lock()
        self._jobs_log: Optional[Any] = None
        self._started_monotonic = time.monotonic()
        self._stop = threading.Event()
        self._worker: Optional[threading.Thread] = None
        #: Bumped on every rebuild; a worker that wakes up with a stale
        #: generation exits without touching shared state again.
        self._worker_gen = 0
        self._worker_heartbeat = time.monotonic()
        self._watchdog: Optional[threading.Thread] = None
        self.worker_rebuilds = 0
        self._last_rebuild_reason = ""
        #: Lifetime stats of retired executors (hung-worker rebuilds swap
        #: in a fresh executor; health() reports base + current).
        self._stats_base = SweepStats()
        self.recovered_jobs = self._recover()

    def _build_executor(self, journal: SweepJournal) -> SweepExecutor:
        return SweepExecutor(
            jobs=self._jobs_n,
            cache=self.cache,
            machine=self.machine,
            verbose=self.verbose,
            retry=self._retry,
            journal=journal,
            on_cell_complete=self._on_cell_complete,
        )

    # ------------------------------------------------------------ lifecycle
    def start(self) -> None:
        """Start the worker tier and its watchdog (idempotent)."""
        with self._cond:
            if self._worker is None:
                self._spawn_worker_locked()
        if self._watchdog is None:
            self._watchdog = threading.Thread(
                target=self._watchdog_loop,
                name="repro-sweep-watchdog",
                daemon=True,
            )
            self._watchdog.start()

    def _spawn_worker_locked(self) -> None:
        gen = self._worker_gen
        worker = threading.Thread(
            target=self._worker_loop,
            args=(gen,),
            name=f"repro-sweep-worker-g{gen}",
            daemon=True,
        )
        self._worker = worker
        self._worker_heartbeat = time.monotonic()
        worker.start()

    def begin_drain(self) -> dict[str, Any]:
        """Stop admissions immediately; running work continues.

        Returns a drain summary.  New submissions are answered
        ``503 + Retry-After`` from this moment; the worker finishes its
        in-flight batch under :meth:`stop`, and everything still queued
        stays durable in ``jobs.jsonl`` for the next daemon life.
        """
        with self._cond:
            self._draining = True
            queued = self.scheduler.pending()
            running = sum(
                1 for t in self._tasks.values() if t.state == _RUNNING
            )
            self._cond.notify_all()
            return {
                "draining": True,
                "queued": queued,
                "running": running,
                "jobs": len(self._jobs),
            }

    def stop(self, timeout_s: Optional[float] = None) -> None:
        """Stop the worker tier; pending work persists in ``jobs.jsonl``.

        The in-flight batch is allowed to finish (and checkpoint through
        the journal) within ``timeout_s`` (default: ``drain_grace_s``).
        A worker that fails to join by the deadline is logged and
        surfaced as :class:`ServiceShutdownError` — never silently
        abandoned.
        """
        deadline = self.drain_grace_s if timeout_s is None else timeout_s
        self._stop.set()
        with self._cond:
            worker = self._worker
            self._worker = None
            self._cond.notify_all()
        watchdog = self._watchdog
        self._watchdog = None
        if watchdog is not None:
            watchdog.join(timeout=5.0)
        stuck = False
        if worker is not None:
            worker.join(timeout=deadline)
            stuck = worker.is_alive()
        if stuck:
            message = (
                f"sweep worker thread failed to stop within {deadline:.1f}s; "
                "state may still be mutating (journal left open)"
            )
            print(f"repro-serve: ERROR: {message}", file=sys.stderr, flush=True)
        else:
            with self._cond:
                journal = self.journal
            journal.close()
        with self._log_lock:
            if self._jobs_log is not None:
                try:
                    self._jobs_log.close()
                except OSError:
                    pass
                self._jobs_log = None
        if stuck:
            raise ServiceShutdownError(message)

    # ------------------------------------------------------------ durability
    def _log_job(
        self,
        job_id: str,
        client: str,
        specs: list[CellSpec],
        criticality: Optional[str] = None,
        idempotency: Optional[str] = None,
    ) -> None:
        """Persist a submission before acknowledging it (fsync, like the
        sweep journal): a SIGKILLed daemon must be able to finish every
        job it ever accepted."""
        entry: dict[str, Any] = {
            "job": job_id,
            "client": client,
            "cells": [spec_to_dict(s) for s in specs],
        }
        if criticality is not None:
            entry["criticality"] = criticality
        if idempotency is not None:
            entry["idempotency"] = idempotency
        line = json.dumps(entry, sort_keys=True)
        # Concurrent submits run on asyncio.to_thread workers; without
        # this lock the lazy open races and interleaved write/fsync pairs
        # can tear lines in the very log whose job is crash recovery.
        with self._log_lock:
            try:
                if self._jobs_log is None:
                    self._jobs_log = open(
                        self._jobs_log_path, "a", encoding="utf-8"
                    )
                    if self._jobs_log.tell() > 0:
                        # Torn tail from a killed writer: start on a
                        # fresh line.
                        with open(self._jobs_log_path, "rb") as fh:
                            fh.seek(-1, os.SEEK_END)
                            if fh.read(1) != b"\n":
                                self._jobs_log.write("\n")
                self._jobs_log.write(line + "\n")
                self._jobs_log.flush()
                os.fsync(self._jobs_log.fileno())
            except OSError:
                # An unwritable log degrades restart recovery, nothing
                # else.
                pass

    def _recover(self) -> int:
        """Replay ``jobs.jsonl``: re-register every job of previous daemon
        lives.  Finished cells resolve instantly from the cache; only the
        unfinished remainder re-enters the queue.  Recovery bypasses
        admission control — these jobs were already accepted."""
        entries: list[tuple[str, str, list[CellSpec], Optional[str]]] = []
        try:
            with open(self._jobs_log_path, encoding="utf-8") as fh:
                for raw in fh:
                    raw = raw.strip()
                    if not raw:
                        continue
                    try:
                        entry = json.loads(raw)
                        job_id = str(entry["job"])
                        client = str(entry["client"])
                        specs = [spec_from_dict(c) for c in entry["cells"]]
                        idem = entry.get("idempotency")
                        idem = str(idem) if idem is not None else None
                    except (json.JSONDecodeError, KeyError, TypeError,
                            ValueError):
                        continue  # torn tail or garbage: skip, don't crash
                    entries.append((job_id, client, specs, idem))
        except FileNotFoundError:
            return 0
        except OSError:
            return 0
        for job_id, client, specs, idem in entries:
            self._register(job_id, client, specs)
            seq = _job_seq_of(job_id)
            with self._cond:
                if seq is not None:
                    self._job_seq = max(self._job_seq, seq + 1)
                if idem is not None:
                    self._idempotency[idem] = job_id
        return len(entries)

    # ------------------------------------------------------------ submission
    def submit(self, body: Any) -> dict[str, Any]:
        """Accept one submit request; returns the receipt.

        Raises :class:`~repro.service.overload.DrainingError` while
        draining and :class:`~repro.service.overload.OverloadedError`
        when the admission controller sheds the submission.
        """
        client, specs = expand_submit(body)
        criticality = criticality_of(body, specs)
        idem = (
            str(body["idempotency_key"])
            if isinstance(body, dict) and body.get("idempotency_key")
            else None
        )
        unique = list(dict.fromkeys(specs))
        # Content-address outside the lock (hashing is CPU, not state).
        keys = [spec.key(self.machine) for spec in unique]
        with self._cond:
            if self._draining:
                raise DrainingError()
            if idem is not None and idem in self._idempotency:
                replay = self._jobs.get(self._idempotency[idem])
                if replay is not None:
                    # The first attempt landed; the retry gets the same
                    # receipt instead of a duplicate job.
                    return self._receipt(replay)
            # Upper bound on this submission's new load: keys not already
            # resolved or in flight (warm-cache hits resolve later, at
            # registration, without ever being enqueued).
            new_cells = sum(
                1
                for key in keys
                if (task := self._tasks.get(key)) is None
                or task.state == _FAILED
            )
            decision = self.admission.decide(
                client,
                criticality,
                new_cells,
                queue_depth=sum(self._client_inflight.values()),
                client_inflight=self._client_inflight.get(client, 0),
            )
            if not decision.admitted:
                raise OverloadedError(decision.reason, decision.retry_after_s)
            job_id = f"j{self._job_seq:06d}"
            self._job_seq += 1
        self._log_job(
            job_id, client, specs, criticality=criticality, idempotency=idem
        )
        job = self._register(job_id, client, specs)
        if idem is not None:
            with self._cond:
                self._idempotency[idem] = job_id
        return self._receipt(job)

    def _register(
        self, job_id: str, client: str, specs: list[CellSpec]
    ) -> _Job:
        with self._cond:
            unique = list(dict.fromkeys(specs))
            job = _Job(
                job_id=job_id,
                client=client,
                keys=[],
                requested=len(specs),
                deduped=len(specs) - len(unique),
            )
            for spec in unique:
                key = spec.key(self.machine)
                job.keys.append(key)
                task = self._tasks.get(key)
                if task is not None and task.state in (_PENDING, _RUNNING):
                    # In-flight dedup: another client already queued this
                    # exact cell; subscribe instead of re-simulating.
                    task.jobs.add(job_id)
                    job.attached += 1
                    continue
                if task is not None and task.state == _DONE:
                    job.cached_at_submit += 1
                    job.pre_resolved.add(key)
                    if task.resumed:
                        job.resumed += 1
                    continue
                # Unknown (or previously failed) cell: O(1) warm-cache
                # probe first, simulate only on a genuine miss.
                cached = self.cache.get(key)
                if cached is not None:
                    resumed = key in self.journal.completed
                    self._tasks[key] = _CellTask(
                        spec=spec,
                        key=key,
                        state=_DONE,
                        seconds=self.journal.seconds.get(key, 0.0),
                        from_cache=True,
                        resumed=resumed,
                    )
                    job.cached_at_submit += 1
                    job.pre_resolved.add(key)
                    if resumed:
                        job.resumed += 1
                    continue
                task = _CellTask(spec=spec, key=key, client=client)
                task.jobs.add(job_id)
                self._tasks[key] = task
                self.scheduler.enqueue(client, task)
                self._client_inflight[client] = (
                    self._client_inflight.get(client, 0) + 1
                )
            self._jobs[job_id] = job
            self._cond.notify_all()
        return job

    def _receipt(self, job: _Job) -> dict[str, Any]:
        pending = (
            len(job.keys) - job.cached_at_submit - job.attached
        )
        return {
            "job": job.job_id,
            "client": job.client,
            "cells": job.requested,
            "unique": len(job.keys),
            "deduped": job.deduped,
            "cached": job.cached_at_submit,
            "attached": job.attached,
            "pending": pending,
            "resumed": job.resumed,
        }

    def _dec_inflight_locked(self, task: _CellTask) -> None:
        """Release one unit of the enqueuing client's in-flight budget."""
        count = self._client_inflight.get(task.client)
        if count is None:
            return
        if count <= 1:
            del self._client_inflight[task.client]
        else:
            self._client_inflight[task.client] = count - 1

    # ------------------------------------------------------------ worker tier
    def _worker_loop(self, gen: int) -> None:
        while True:
            batch: list[_CellTask] = []
            with self._cond:
                while not self._stop.is_set() and gen == self._worker_gen:
                    self._worker_heartbeat = time.monotonic()
                    batch = self._take_batch_locked()
                    if batch:
                        break
                    self._cond.wait(timeout=0.25)
                if self._stop.is_set() or gen != self._worker_gen:
                    return
                executor = self.executor
            specs = [task.spec for task in batch]
            try:
                executor.run_cells(specs)
            except Exception as exc:  # the daemon must survive any cell error
                # Exhausted retries / non-retryable cell error: fail every
                # batch cell that didn't complete, keep serving.
                with self._cond:
                    if gen != self._worker_gen:
                        # Abandoned mid-batch by the watchdog: the new
                        # worker owns these (requeued) cells now.
                        return
                    for task in batch:
                        if task.state != _DONE:
                            task.state = _FAILED
                            task.error = f"{type(exc).__name__}: {exc}"
                            self._dec_inflight_locked(task)
                    self._cond.notify_all()

    def _take_batch_locked(self) -> list[_CellTask]:
        batch: list[_CellTask] = []
        while len(batch) < self.batch_size:
            taken = self.scheduler.take(self.batch_size - len(batch))
            if not taken:
                break
            for task in taken:
                # A cell can have been resolved (or failed) since it was
                # queued — e.g. by a previous batch it was attached to.
                if task.state == _PENDING:
                    task.state = _RUNNING
                    batch.append(task)
        return batch

    def _on_cell_complete(
        self,
        spec: CellSpec,
        key: str,
        result: RunResult,
        seconds: float,
        from_cache: bool,
    ) -> None:
        """Executor hook: journal-backed per-cell progress streaming."""
        with self._cond:
            self._worker_heartbeat = time.monotonic()
            task = self._tasks.get(key)
            if task is None:
                return
            if task.state in (_PENDING, _RUNNING):
                self._dec_inflight_locked(task)
            task.state = _DONE
            task.seconds = seconds
            task.from_cache = from_cache
            task.error = ""
            for job_id in task.jobs:
                job = self._jobs.get(job_id)
                if job is None:
                    continue
                if from_cache:
                    job.cached_after_submit += 1
                else:
                    job.simulated += 1
            task.jobs.clear()
            self._cond.notify_all()

    # ------------------------------------------------------------- watchdog
    def _watchdog_loop(self) -> None:
        """Rebuild the worker tier when its thread dies or hangs.

        Mirrors the executor's stuck-pool recovery one layer up: the
        executor tears down and rebuilds a hung *process pool*; the
        watchdog tears down and rebuilds a dead/hung *worker thread*
        (with a fresh executor + journal handle for hangs, because the
        old ones are stuck inside the abandoned call).
        """
        while not self._stop.wait(self.watchdog_interval_s):
            with self._cond:
                worker = self._worker
                if worker is None:
                    continue
                if not worker.is_alive():
                    self._rebuild_worker_locked("worker thread died")
                    continue
                busy = self.scheduler.pending() > 0 or any(
                    t.state == _RUNNING for t in self._tasks.values()
                )
                hang = self.worker_hang_timeout_s
                if (
                    hang is not None
                    and busy
                    and time.monotonic() - self._worker_heartbeat > hang
                ):
                    self._rebuild_worker_locked(
                        f"worker heartbeat stale past {hang:.1f}s"
                    )

    def _rebuild_worker_locked(self, reason: str) -> None:
        """Abandon the current worker generation and start a fresh one.

        Caller holds ``_cond``.  RUNNING cells are requeued for the new
        worker; if the abandoned thread ever finishes them anyway, the
        completion path is idempotent (content-addressed cache writes are
        atomic and ``_on_cell_complete`` keys by cell, not by worker).
        """
        print(
            f"repro-serve: watchdog: {reason}; rebuilding worker tier",
            file=sys.stderr,
            flush=True,
        )
        self._worker_gen += 1
        self.worker_rebuilds += 1
        self._last_rebuild_reason = reason
        # The old executor/journal may be wedged inside the abandoned
        # call; retire them (keeping their lifetime stats) and hand the
        # new worker fresh ones on the same on-disk state.
        self._stats_base.merge(self.executor.stats)
        self.journal = SweepJournal(self._journal_path)
        self.executor = self._build_executor(self.journal)
        for task in self._tasks.values():
            if task.state == _RUNNING:
                task.state = _PENDING
                self.scheduler.enqueue(task.client or "anon", task)
        self._spawn_worker_locked()
        self._cond.notify_all()

    # ------------------------------------------------------------ queries
    def status(self, job_id: str, detail: bool = False) -> dict[str, Any]:
        with self._cond:
            job = self._jobs.get(job_id)
            if job is None:
                raise KeyError(job_id)
            return self._status_locked(job, detail)

    def _status_locked(self, job: _Job, detail: bool) -> dict[str, Any]:
        counts = {_PENDING: 0, _RUNNING: 0, _DONE: 0, _FAILED: 0}
        rows: list[dict[str, Any]] = []
        for key in job.keys:
            task = self._tasks[key]
            counts[task.state] += 1
            if detail:
                rows.append(
                    {
                        "label": task.spec.label(),
                        "key": key,
                        "state": task.state,
                        "seconds": round(task.seconds, 6),
                        "from_cache": task.from_cache,
                        "resumed": task.resumed,
                        "error": task.error,
                    }
                )
        if counts[_FAILED]:
            state = _FAILED
        elif counts[_DONE] == len(job.keys):
            state = _DONE
        elif counts[_RUNNING] or counts[_DONE]:
            state = _RUNNING
        else:
            state = "queued"
        payload: dict[str, Any] = {
            "job": job.job_id,
            "client": job.client,
            "state": state,
            "cells": job.requested,
            "unique": len(job.keys),
            "deduped": job.deduped,
            "pending": counts[_PENDING],
            "running": counts[_RUNNING],
            "done": counts[_DONE],
            "failed": counts[_FAILED],
            "cached": job.cached_at_submit + job.cached_after_submit,
            "attached": job.attached,
            "simulated": job.simulated,
            "resumed": job.resumed,
        }
        if detail:
            payload["detail"] = rows
        return payload

    def wait_settled(self, job_id: str, timeout_s: float) -> dict[str, Any]:
        """Block until the job settles (done/failed) or the deadline
        passes; returns the final status either way (long-poll body)."""
        deadline = time.monotonic() + max(0.0, timeout_s)
        with self._cond:
            while True:
                job = self._jobs.get(job_id)
                if job is None:
                    raise KeyError(job_id)
                status = self._status_locked(job, detail=False)
                remaining = deadline - time.monotonic()
                if status["state"] in (_DONE, _FAILED) or remaining <= 0:
                    return status
                self._cond.wait(timeout=min(remaining, 1.0))

    def fetch(self, job_id: str) -> dict[str, Any]:
        """Results of a finished job, each with its SHA-256 fingerprint."""
        with self._cond:
            job = self._jobs.get(job_id)
            if job is None:
                raise KeyError(job_id)
            status = self._status_locked(job, detail=False)
            if status["state"] != _DONE:
                raise _NotDone(status["state"])
            tasks = [self._tasks[key] for key in job.keys]
            pre_resolved = set(job.pre_resolved)
        results = []
        for task in tasks:
            result = self.cache.get(task.key)
            if result is None:
                # Quarantined/evicted behind our back; recoverable by
                # resubmitting (the cell will re-simulate).
                raise _NotDone(f"result for {task.spec.label()} missing from cache")
            results.append(
                {
                    "label": task.spec.label(),
                    "cell": spec_to_dict(task.spec),
                    "key": task.key,
                    "fingerprint": result_fingerprint(result),
                    "seconds": round(task.seconds, 6),
                    "from_cache": task.from_cache or task.key in pre_resolved,
                    "result": result_to_dict(result),
                }
            )
        payload = dict(status)
        payload["results"] = results
        return payload

    def health(self) -> dict[str, Any]:
        with self._cond:
            stats = SweepStats()
            stats.merge(self._stats_base)
            stats.merge(self.executor.stats)
            active = sum(
                1
                for task in self._tasks.values()
                if task.state in (_PENDING, _RUNNING)
            )
            worker = self._worker
            return {
                "ok": True,
                "version": PROTOCOL_VERSION,
                "uptime_s": round(time.monotonic() - self._started_monotonic, 3),
                "draining": self._draining,
                "jobs": len(self._jobs),
                "recovered_jobs": self.recovered_jobs,
                "active_cells": active,
                "known_cells": len(self._tasks),
                "worker": {
                    "alive": worker.is_alive() if worker is not None else False,
                    "rebuilds": self.worker_rebuilds,
                    "last_rebuild_reason": self._last_rebuild_reason,
                },
                "overload": self.admission.snapshot(),
                "stats": {
                    "cells": stats.cells,
                    "cache_hits": stats.cache_hits,
                    "deduped": stats.deduped,
                    "simulated": stats.simulated,
                    "resumed": stats.resumed,
                    "retries": stats.retries,
                    "timeouts": stats.timeouts,
                    "pool_crashes": stats.pool_crashes,
                    "sim_seconds": round(stats.sim_seconds, 6),
                },
            }


def _job_seq_of(job_id: str) -> Optional[int]:
    if job_id.startswith("j") and job_id[1:].isdigit():
        return int(job_id[1:])
    return None


class _NotDone(Exception):
    """Job not in a fetchable state; maps to HTTP 409."""


# ---------------------------------------------------------------- HTTP front
_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    409: "Conflict",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class ServiceServer:
    """Minimal stdlib HTTP/1.1 front over a :class:`SweepService`."""

    def __init__(
        self,
        service: SweepService,
        host: str = DEFAULT_HOST,
        port: int = DEFAULT_PORT,
        on_drain: Optional[Callable[[], None]] = None,
    ) -> None:
        self.service = service
        self.host = host
        self.port = port
        #: Called (on the event loop) after a drain request has stopped
        #: admissions; ``serve()`` uses it to schedule process exit.
        self.on_drain = on_drain
        self._server: Optional[asyncio.AbstractServer] = None

    async def start(self) -> tuple[str, int]:
        """Bind and start serving; returns the actual ``(host, port)``
        (``port=0`` picks a free one)."""
        self.service.start()
        self._server = await asyncio.start_server(
            self._handle, host=self.host, port=self.port
        )
        sock = self._server.sockets[0]
        self.host, self.port = sock.getsockname()[:2]
        self._write_endpoint_file()
        return self.host, self.port

    def _write_endpoint_file(self) -> None:
        """Drop ``<state>/endpoint.json`` so clients and smoke harnesses
        can find a daemon bound to an ephemeral port."""
        path = os.path.join(self.service.state_dir, "endpoint.json")
        try:
            with open(path, "w", encoding="utf-8") as fh:
                json.dump(
                    {
                        "host": self.host,
                        "port": self.port,
                        "pid": os.getpid(),
                        "url": f"http://{self.host}:{self.port}",
                    },
                    fh,
                    sort_keys=True,
                )
        except OSError:
            pass

    async def stop(self) -> None:
        """Close the HTTP front, then stop the worker tier gracefully.

        Propagates :class:`ServiceShutdownError` if the worker misses
        the drain deadline — ``serve()`` turns that into a nonzero exit.
        """
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await asyncio.to_thread(self.service.stop)

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        status, payload = 500, {"error": "internal error"}
        extra_headers: dict[str, str] = {}
        try:
            request = await asyncio.wait_for(reader.readline(), timeout=30.0)
            parts = request.decode("latin-1").split()
            if len(parts) < 2:
                raise _BadRequest("malformed request line")
            method, target = parts[0].upper(), parts[1]
            headers: dict[str, str] = {}
            while True:
                line = await asyncio.wait_for(reader.readline(), timeout=30.0)
                if line in (b"\r\n", b"\n", b""):
                    break
                name, _, value = line.decode("latin-1").partition(":")
                headers[name.strip().lower()] = value.strip()
            try:
                length = int(headers.get("content-length", "0") or "0")
            except ValueError:
                raise _BadRequest("content-length is not an integer") from None
            if length < 0:
                raise _BadRequest("content-length is negative")
            if length > MAX_BODY_BYTES:
                # Reject before buffering a byte: an oversized (or
                # forever-streaming) body must not balloon the daemon.
                status, payload = 413, {
                    "error": f"request body of {length} bytes exceeds the "
                    f"{MAX_BODY_BYTES}-byte limit"
                }
            else:
                body = (
                    await asyncio.wait_for(
                        reader.readexactly(length), timeout=30.0
                    )
                    if length > 0
                    else b""
                )
                status, payload, extra_headers = await self._route(
                    method, target, body
                )
        except _BadRequest as exc:
            status, payload = 400, {"error": str(exc)}
        except (asyncio.IncompleteReadError, asyncio.TimeoutError):
            status, payload = 400, {"error": "truncated request"}
        except ConnectionError:
            writer.close()
            return
        except Exception as exc:  # one bad request must not
            # take the daemon down.
            status, payload = 500, {"error": f"{type(exc).__name__}: {exc}"}
        try:
            blob = json.dumps(payload, sort_keys=True).encode("utf-8")
            reason = _REASONS.get(status, "OK")
            head_lines = [
                f"HTTP/1.1 {status} {reason}",
                "Content-Type: application/json",
                f"Content-Length: {len(blob)}",
            ]
            head_lines += [f"{k}: {v}" for k, v in extra_headers.items()]
            head_lines.append("Connection: close")
            head = "\r\n".join(head_lines) + "\r\n\r\n"
            writer.write(head.encode("latin-1") + blob)
            await writer.drain()
        except ConnectionError:
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _route(
        self, method: str, target: str, body: bytes
    ) -> tuple[int, dict[str, Any], dict[str, str]]:
        split = urlsplit(target)
        path = split.path.rstrip("/")
        query = {k: v[-1] for k, v in parse_qs(split.query).items()}
        if method == "POST" and path == "/v1/jobs":
            try:
                parsed = json.loads(body.decode("utf-8")) if body else {}
            except (json.JSONDecodeError, UnicodeDecodeError) as exc:
                raise _BadRequest(f"body is not valid JSON: {exc}") from exc
            try:
                # Submission writes fsynced state; keep it off the loop.
                receipt = await asyncio.to_thread(self.service.submit, parsed)
            except ProtocolError as exc:
                return 400, {"error": str(exc)}, {}
            except OverloadedError as exc:
                return (
                    429,
                    {
                        "error": f"overloaded: {exc.reason}",
                        "retry_after_s": exc.retry_after_s,
                    },
                    {"Retry-After": _retry_after_header(exc.retry_after_s)},
                )
            except DrainingError as exc:
                return (
                    503,
                    {
                        "error": str(exc),
                        "retry_after_s": exc.retry_after_s,
                    },
                    {"Retry-After": _retry_after_header(exc.retry_after_s)},
                )
            return 200, receipt, {}
        if method == "POST" and path == "/v1/admin/drain":
            summary = await asyncio.to_thread(self.service.begin_drain)
            if self.on_drain is not None:
                # Admissions are already off; schedule the actual exit
                # after this response has gone out.
                loop = asyncio.get_running_loop()
                loop.call_soon(self.on_drain)
            return 200, summary, {}
        if method == "GET" and path == "/v1/healthz":
            return 200, self.service.health(), {}
        if method == "GET" and path.startswith("/v1/jobs/"):
            rest = path[len("/v1/jobs/"):]
            try:
                if rest.endswith("/results"):
                    job_id = rest[: -len("/results")]
                    return 200, await asyncio.to_thread(
                        self.service.fetch, job_id
                    ), {}
                job_id = rest
                wait_s = float(query.get("wait", "0") or "0")
                detail = query.get("detail", "0") not in ("0", "", "false")
                if wait_s > 0:
                    status = await asyncio.to_thread(
                        self.service.wait_settled, job_id, min(wait_s, 300.0)
                    )
                    if detail:
                        status = self.service.status(job_id, detail=True)
                    return 200, status, {}
                return 200, self.service.status(job_id, detail=detail), {}
            except KeyError:
                return 404, {"error": f"unknown job {rest.split('/')[0]!r}"}, {}
            except _NotDone as exc:
                return 409, {"error": f"job not fetchable: {exc}"}, {}
            except ValueError as exc:
                raise _BadRequest(str(exc)) from exc
        return 404, {"error": f"no route for {method} {path}"}, {}


def _retry_after_header(retry_after_s: float) -> str:
    """HTTP ``Retry-After`` wants integral seconds; round up, floor 1."""
    return str(max(1, int(round(retry_after_s))))


class _BadRequest(Exception):
    pass


def serve(
    state_dir: str,
    host: str = DEFAULT_HOST,
    port: int = DEFAULT_PORT,
    jobs: int = 1,
    retry: Optional[RetryPolicy] = None,
    shares: Optional[dict[str, int]] = None,
    default_share: int = DEFAULT_SHARE,
    overload: Optional[OverloadPolicy] = None,
    drain_grace_s: float = 30.0,
    worker_hang_timeout_s: Optional[float] = None,
    verbose: bool = False,
) -> int:
    """Blocking entry point for ``repro serve``; returns an exit code.

    SIGTERM/SIGINT and ``POST /v1/admin/drain`` all take the graceful
    path: admissions stop immediately (503 + Retry-After), the in-flight
    batch finishes and checkpoints, and the process exits within
    ``drain_grace_s`` — exit code 1 if the worker tier missed the
    deadline, 0 on a clean drain.
    """
    service = SweepService(
        state_dir,
        jobs=jobs,
        retry=retry,
        shares=shares,
        default_share=default_share,
        overload=overload,
        drain_grace_s=drain_grace_s,
        worker_hang_timeout_s=worker_hang_timeout_s,
        verbose=verbose,
    )
    server = ServiceServer(service, host=host, port=port)
    exit_code = 0

    async def _main() -> None:
        nonlocal exit_code
        stop = asyncio.Event()
        server.on_drain = stop.set
        bound_host, bound_port = await server.start()
        print(
            f"repro-serve listening on http://{bound_host}:{bound_port} "
            f"(state dir {state_dir!r}, jobs={jobs}, "
            f"recovered {service.recovered_jobs} jobs)",
            flush=True,
        )
        loop = asyncio.get_running_loop()

        def _graceful(signame: str) -> None:
            # Admissions stop the instant the signal lands; the drain
            # itself (worker join, checkpoints) runs after stop.wait().
            print(f"repro-serve: {signame}: draining", flush=True)
            service.begin_drain()
            stop.set()

        try:
            import signal as _signal

            for sig in (_signal.SIGINT, _signal.SIGTERM):
                loop.add_signal_handler(
                    sig, _graceful, _signal.Signals(sig).name
                )
        except (NotImplementedError, OSError):  # pragma: no cover — non-POSIX
            pass
        await stop.wait()
        print("repro-serve shutting down (graceful drain)", flush=True)
        try:
            await server.stop()
        except ServiceShutdownError as exc:
            print(f"repro-serve: drain failed: {exc}", file=sys.stderr,
                  flush=True)
            exit_code = 1
            return
        print("repro-serve drained cleanly", flush=True)

    try:
        asyncio.run(_main())
    except KeyboardInterrupt:  # pragma: no cover — belt and braces
        pass
    return exit_code
