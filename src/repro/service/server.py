"""Sweep service daemon: ``repro serve``.

Promotes the crash-proof sweep harness into long-running infrastructure.
Architecture, front to back:

* an **asyncio HTTP/JSON front** (:class:`ServiceServer`) — a minimal
  stdlib HTTP/1.1 loop over ``asyncio.start_server``, one JSON response
  per connection; long-polls park in ``asyncio.to_thread`` so they never
  block the event loop;
* the **service core** (:class:`SweepService`) — thread-safe job/cell
  bookkeeping: submissions expand to content-addressed cells, identical
  in-flight cells from different clients collapse onto one
  :class:`_CellTask` (simulated exactly once), warm cells are answered
  from the :class:`~repro.harness.cache.ResultCache` in O(1) with no
  simulation, and a :class:`~repro.service.fairness.FairScheduler`
  enforces per-client concurrency shares;
* the **worker tier** — one background thread draining fair batches
  through an unmodified :class:`~repro.harness.executor.SweepExecutor`
  (same retries, timeouts, pool recovery, journal), so service results
  are bitwise-identical to the single-process CLI path.

Durability: submissions are appended (fsynced) to ``<state>/jobs.jsonl``
before they are acknowledged, completed cells land in the result cache
and the fsynced sweep journal.  A SIGKILLed daemon therefore restarts by
replaying ``jobs.jsonl``: finished cells resolve instantly from the cache
(counted as *resumed* when the journal vouches for them) and only
genuinely unfinished cells are re-simulated.
"""

from __future__ import annotations

import asyncio
import json
import os
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Optional
from urllib.parse import parse_qs, urlsplit

from ..harness.cache import ResultCache
from ..harness.executor import CellSpec, RetryPolicy, SweepExecutor
from ..harness.journal import SweepJournal
from ..runtime.system import RunResult
from ..sim.config import MachineConfig
from ..sim.serialize import result_to_dict
from .fairness import DEFAULT_SHARE, FairScheduler
from .protocol import (
    DEFAULT_HOST,
    DEFAULT_PORT,
    PROTOCOL_VERSION,
    ProtocolError,
    expand_submit,
    result_fingerprint,
    spec_from_dict,
    spec_to_dict,
)

__all__ = ["SweepService", "ServiceServer", "serve"]

_PENDING = "pending"
_RUNNING = "running"
_DONE = "done"
_FAILED = "failed"


@dataclass
class _CellTask:
    """One unique in-flight cell, shared by every job that requested it."""

    spec: CellSpec
    key: str
    state: str = _PENDING
    #: Simulation seconds (0.0 when served from cache).
    seconds: float = 0.0
    #: Resolved from the warm cache, no simulation on behalf of anyone.
    from_cache: bool = False
    #: Vouched for by the sweep journal of an earlier daemon life.
    resumed: bool = False
    error: str = ""
    #: Jobs subscribed for completion accounting (only those that were
    #: waiting on this cell at submit time; warm hits never subscribe).
    jobs: set[str] = field(default_factory=set)


@dataclass
class _Job:
    """One accepted submission."""

    job_id: str
    client: str
    #: Unique cell keys, submission order.
    keys: list[str]
    #: Requested cells including duplicates within the submission.
    requested: int
    #: Duplicates inside this submission (resolved once, fanned out).
    deduped: int = 0
    #: Cells already resolved when the job arrived (warm cache / an
    #: earlier job's finished work).
    cached_at_submit: int = 0
    #: Cells that were already queued or running for another client when
    #: this job arrived — deduplicated in flight, simulated exactly once.
    attached: int = 0
    #: Cells vouched for by the journal of a previous daemon life.
    resumed: int = 0
    #: Cells simulated after this job subscribed to them.
    simulated: int = 0
    #: Cells that resolved from cache after subscription (rare: another
    #: batch finished them between submit and dispatch).
    cached_after_submit: int = 0
    #: Keys already resolved when this job arrived — from this job's point
    #: of view they were served from the warm cache, whatever first
    #: resolved them.
    pre_resolved: set[str] = field(default_factory=set)


class SweepService:
    """Thread-safe core of the sweep daemon (usable without HTTP).

    Three kinds of threads share this object: ``asyncio.to_thread``
    handler threads (submit/status/fetch), the dedicated sweep-worker
    thread, and executor callbacks (``_on_cell_complete``).  The lock
    discipline below is machine-checked by ``repro check`` (CONC2xx):

    @guarded_by("_cond"): _tasks, _jobs, _job_seq, scheduler
    @guarded_by("_log_lock"): _jobs_log

    ``_log_lock`` serializes the fsynced ``jobs.jsonl`` appends without
    stalling the service under ``_cond`` for the disk; it is never held
    together with ``_cond`` (submit releases ``_cond`` before logging),
    so no lock ordering exists between them.
    """

    def __init__(
        self,
        state_dir: str,
        jobs: int = 1,
        retry: Optional[RetryPolicy] = None,
        machine: Optional[MachineConfig] = None,
        shares: Optional[dict[str, int]] = None,
        default_share: int = DEFAULT_SHARE,
        verbose: bool = False,
    ) -> None:
        self.state_dir = state_dir
        os.makedirs(state_dir, exist_ok=True)
        cache_dir = os.path.join(state_dir, "cache")
        self.cache = ResultCache(cache_dir)
        self.journal = SweepJournal(os.path.join(cache_dir, "journal.jsonl"))
        self.machine = machine
        self.verbose = verbose
        self.executor = SweepExecutor(
            jobs=jobs,
            cache=self.cache,
            machine=machine,
            verbose=verbose,
            retry=retry,
            journal=self.journal,
            on_cell_complete=self._on_cell_complete,
        )
        self.scheduler = FairScheduler(default_share=default_share, shares=shares)
        #: Cells per worker batch: mirrors the executor's oversubscription
        #: window so the pool stays fed, small enough that fairness and
        #: in-flight dedup re-evaluate frequently.
        self.batch_size = max(2 * jobs, 4)
        self._cond = threading.Condition()
        self._tasks: dict[str, _CellTask] = {}
        self._jobs: dict[str, _Job] = {}
        self._job_seq = 1
        self._jobs_log_path = os.path.join(state_dir, "jobs.jsonl")
        self._log_lock = threading.Lock()
        self._jobs_log: Optional[Any] = None
        self._started_monotonic = time.monotonic()
        self._stop = threading.Event()
        self._worker: Optional[threading.Thread] = None
        self.recovered_jobs = self._recover()

    # ------------------------------------------------------------ lifecycle
    def start(self) -> None:
        """Start the worker tier (idempotent)."""
        if self._worker is not None:
            return
        self._worker = threading.Thread(
            target=self._worker_loop, name="repro-sweep-worker", daemon=True
        )
        self._worker.start()

    def stop(self) -> None:
        """Stop the worker tier; pending work persists in ``jobs.jsonl``."""
        self._stop.set()
        with self._cond:
            self._cond.notify_all()
        if self._worker is not None:
            self._worker.join(timeout=30.0)
            self._worker = None
        self.journal.close()
        with self._log_lock:
            if self._jobs_log is not None:
                try:
                    self._jobs_log.close()
                except OSError:
                    pass
                self._jobs_log = None

    # ------------------------------------------------------------ durability
    def _log_job(self, job_id: str, client: str, specs: list[CellSpec]) -> None:
        """Persist a submission before acknowledging it (fsync, like the
        sweep journal): a SIGKILLed daemon must be able to finish every
        job it ever accepted."""
        line = json.dumps(
            {
                "job": job_id,
                "client": client,
                "cells": [spec_to_dict(s) for s in specs],
            },
            sort_keys=True,
        )
        # Concurrent submits run on asyncio.to_thread workers; without
        # this lock the lazy open races and interleaved write/fsync pairs
        # can tear lines in the very log whose job is crash recovery.
        with self._log_lock:
            try:
                if self._jobs_log is None:
                    self._jobs_log = open(
                        self._jobs_log_path, "a", encoding="utf-8"
                    )
                    if self._jobs_log.tell() > 0:
                        # Torn tail from a killed writer: start on a
                        # fresh line.
                        with open(self._jobs_log_path, "rb") as fh:
                            fh.seek(-1, os.SEEK_END)
                            if fh.read(1) != b"\n":
                                self._jobs_log.write("\n")
                self._jobs_log.write(line + "\n")
                self._jobs_log.flush()
                os.fsync(self._jobs_log.fileno())
            except OSError:
                # An unwritable log degrades restart recovery, nothing
                # else.
                pass

    def _recover(self) -> int:
        """Replay ``jobs.jsonl``: re-register every job of previous daemon
        lives.  Finished cells resolve instantly from the cache; only the
        unfinished remainder re-enters the queue."""
        entries: list[tuple[str, str, list[CellSpec]]] = []
        try:
            with open(self._jobs_log_path, encoding="utf-8") as fh:
                for raw in fh:
                    raw = raw.strip()
                    if not raw:
                        continue
                    try:
                        entry = json.loads(raw)
                        job_id = str(entry["job"])
                        client = str(entry["client"])
                        specs = [spec_from_dict(c) for c in entry["cells"]]
                    except (json.JSONDecodeError, KeyError, TypeError,
                            ValueError):
                        continue  # torn tail or garbage: skip, don't crash
                    entries.append((job_id, client, specs))
        except FileNotFoundError:
            return 0
        except OSError:
            return 0
        for job_id, client, specs in entries:
            self._register(job_id, client, specs)
            seq = _job_seq_of(job_id)
            if seq is not None:
                with self._cond:
                    self._job_seq = max(self._job_seq, seq + 1)
        return len(entries)

    # ------------------------------------------------------------ submission
    def submit(self, body: Any) -> dict[str, Any]:
        """Accept one submit request; returns the receipt."""
        client, specs = expand_submit(body)
        with self._cond:
            job_id = f"j{self._job_seq:06d}"
            self._job_seq += 1
        self._log_job(job_id, client, specs)
        job = self._register(job_id, client, specs)
        return self._receipt(job)

    def _register(
        self, job_id: str, client: str, specs: list[CellSpec]
    ) -> _Job:
        with self._cond:
            unique = list(dict.fromkeys(specs))
            job = _Job(
                job_id=job_id,
                client=client,
                keys=[],
                requested=len(specs),
                deduped=len(specs) - len(unique),
            )
            for spec in unique:
                key = spec.key(self.machine)
                job.keys.append(key)
                task = self._tasks.get(key)
                if task is not None and task.state in (_PENDING, _RUNNING):
                    # In-flight dedup: another client already queued this
                    # exact cell; subscribe instead of re-simulating.
                    task.jobs.add(job_id)
                    job.attached += 1
                    continue
                if task is not None and task.state == _DONE:
                    job.cached_at_submit += 1
                    job.pre_resolved.add(key)
                    if task.resumed:
                        job.resumed += 1
                    continue
                # Unknown (or previously failed) cell: O(1) warm-cache
                # probe first, simulate only on a genuine miss.
                cached = self.cache.get(key)
                if cached is not None:
                    resumed = key in self.journal.completed
                    self._tasks[key] = _CellTask(
                        spec=spec,
                        key=key,
                        state=_DONE,
                        seconds=self.journal.seconds.get(key, 0.0),
                        from_cache=True,
                        resumed=resumed,
                    )
                    job.cached_at_submit += 1
                    job.pre_resolved.add(key)
                    if resumed:
                        job.resumed += 1
                    continue
                task = _CellTask(spec=spec, key=key)
                task.jobs.add(job_id)
                self._tasks[key] = task
                self.scheduler.enqueue(client, task)
            self._jobs[job_id] = job
            self._cond.notify_all()
        return job

    def _receipt(self, job: _Job) -> dict[str, Any]:
        pending = (
            len(job.keys) - job.cached_at_submit - job.attached
        )
        return {
            "job": job.job_id,
            "client": job.client,
            "cells": job.requested,
            "unique": len(job.keys),
            "deduped": job.deduped,
            "cached": job.cached_at_submit,
            "attached": job.attached,
            "pending": pending,
            "resumed": job.resumed,
        }

    # ------------------------------------------------------------ worker tier
    def _worker_loop(self) -> None:
        while True:
            batch: list[_CellTask] = []
            with self._cond:
                while not self._stop.is_set():
                    batch = self._take_batch_locked()
                    if batch:
                        break
                    self._cond.wait(timeout=0.25)
                if self._stop.is_set():
                    return
            specs = [task.spec for task in batch]
            try:
                self.executor.run_cells(specs)
            except Exception as exc:  # the daemon must survive any cell error
                # Exhausted retries / non-retryable cell error: fail every
                # batch cell that didn't complete, keep serving.
                with self._cond:
                    for task in batch:
                        if task.state != _DONE:
                            task.state = _FAILED
                            task.error = f"{type(exc).__name__}: {exc}"
                    self._cond.notify_all()

    def _take_batch_locked(self) -> list[_CellTask]:
        batch: list[_CellTask] = []
        while len(batch) < self.batch_size:
            taken = self.scheduler.take(self.batch_size - len(batch))
            if not taken:
                break
            for task in taken:
                # A cell can have been resolved (or failed) since it was
                # queued — e.g. by a previous batch it was attached to.
                if task.state == _PENDING:
                    task.state = _RUNNING
                    batch.append(task)
        return batch

    def _on_cell_complete(
        self,
        spec: CellSpec,
        key: str,
        result: RunResult,
        seconds: float,
        from_cache: bool,
    ) -> None:
        """Executor hook: journal-backed per-cell progress streaming."""
        with self._cond:
            task = self._tasks.get(key)
            if task is None:
                return
            task.state = _DONE
            task.seconds = seconds
            task.from_cache = from_cache
            task.error = ""
            for job_id in task.jobs:
                job = self._jobs.get(job_id)
                if job is None:
                    continue
                if from_cache:
                    job.cached_after_submit += 1
                else:
                    job.simulated += 1
            task.jobs.clear()
            self._cond.notify_all()

    # ------------------------------------------------------------ queries
    def status(self, job_id: str, detail: bool = False) -> dict[str, Any]:
        with self._cond:
            job = self._jobs.get(job_id)
            if job is None:
                raise KeyError(job_id)
            return self._status_locked(job, detail)

    def _status_locked(self, job: _Job, detail: bool) -> dict[str, Any]:
        counts = {_PENDING: 0, _RUNNING: 0, _DONE: 0, _FAILED: 0}
        rows: list[dict[str, Any]] = []
        for key in job.keys:
            task = self._tasks[key]
            counts[task.state] += 1
            if detail:
                rows.append(
                    {
                        "label": task.spec.label(),
                        "key": key,
                        "state": task.state,
                        "seconds": round(task.seconds, 6),
                        "from_cache": task.from_cache,
                        "resumed": task.resumed,
                        "error": task.error,
                    }
                )
        if counts[_FAILED]:
            state = _FAILED
        elif counts[_DONE] == len(job.keys):
            state = _DONE
        elif counts[_RUNNING] or counts[_DONE]:
            state = _RUNNING
        else:
            state = "queued"
        payload: dict[str, Any] = {
            "job": job.job_id,
            "client": job.client,
            "state": state,
            "cells": job.requested,
            "unique": len(job.keys),
            "deduped": job.deduped,
            "pending": counts[_PENDING],
            "running": counts[_RUNNING],
            "done": counts[_DONE],
            "failed": counts[_FAILED],
            "cached": job.cached_at_submit + job.cached_after_submit,
            "attached": job.attached,
            "simulated": job.simulated,
            "resumed": job.resumed,
        }
        if detail:
            payload["detail"] = rows
        return payload

    def wait_settled(self, job_id: str, timeout_s: float) -> dict[str, Any]:
        """Block until the job settles (done/failed) or the deadline
        passes; returns the final status either way (long-poll body)."""
        deadline = time.monotonic() + max(0.0, timeout_s)
        with self._cond:
            while True:
                job = self._jobs.get(job_id)
                if job is None:
                    raise KeyError(job_id)
                status = self._status_locked(job, detail=False)
                remaining = deadline - time.monotonic()
                if status["state"] in (_DONE, _FAILED) or remaining <= 0:
                    return status
                self._cond.wait(timeout=min(remaining, 1.0))

    def fetch(self, job_id: str) -> dict[str, Any]:
        """Results of a finished job, each with its SHA-256 fingerprint."""
        with self._cond:
            job = self._jobs.get(job_id)
            if job is None:
                raise KeyError(job_id)
            status = self._status_locked(job, detail=False)
            if status["state"] != _DONE:
                raise _NotDone(status["state"])
            tasks = [self._tasks[key] for key in job.keys]
            pre_resolved = set(job.pre_resolved)
        results = []
        for task in tasks:
            result = self.cache.get(task.key)
            if result is None:
                # Quarantined/evicted behind our back; recoverable by
                # resubmitting (the cell will re-simulate).
                raise _NotDone(f"result for {task.spec.label()} missing from cache")
            results.append(
                {
                    "label": task.spec.label(),
                    "cell": spec_to_dict(task.spec),
                    "key": task.key,
                    "fingerprint": result_fingerprint(result),
                    "seconds": round(task.seconds, 6),
                    "from_cache": task.from_cache or task.key in pre_resolved,
                    "result": result_to_dict(result),
                }
            )
        payload = dict(status)
        payload["results"] = results
        return payload

    def health(self) -> dict[str, Any]:
        stats = self.executor.stats
        with self._cond:
            active = sum(
                1
                for task in self._tasks.values()
                if task.state in (_PENDING, _RUNNING)
            )
            return {
                "ok": True,
                "version": PROTOCOL_VERSION,
                "uptime_s": round(time.monotonic() - self._started_monotonic, 3),
                "jobs": len(self._jobs),
                "recovered_jobs": self.recovered_jobs,
                "active_cells": active,
                "known_cells": len(self._tasks),
                "stats": {
                    "cells": stats.cells,
                    "cache_hits": stats.cache_hits,
                    "deduped": stats.deduped,
                    "simulated": stats.simulated,
                    "resumed": stats.resumed,
                    "retries": stats.retries,
                    "timeouts": stats.timeouts,
                    "pool_crashes": stats.pool_crashes,
                    "sim_seconds": round(stats.sim_seconds, 6),
                },
            }


def _job_seq_of(job_id: str) -> Optional[int]:
    if job_id.startswith("j") and job_id[1:].isdigit():
        return int(job_id[1:])
    return None


class _NotDone(Exception):
    """Job not in a fetchable state; maps to HTTP 409."""


# ---------------------------------------------------------------- HTTP front
class ServiceServer:
    """Minimal stdlib HTTP/1.1 front over a :class:`SweepService`."""

    def __init__(
        self,
        service: SweepService,
        host: str = DEFAULT_HOST,
        port: int = DEFAULT_PORT,
    ) -> None:
        self.service = service
        self.host = host
        self.port = port
        self._server: Optional[asyncio.AbstractServer] = None

    async def start(self) -> tuple[str, int]:
        """Bind and start serving; returns the actual ``(host, port)``
        (``port=0`` picks a free one)."""
        self.service.start()
        self._server = await asyncio.start_server(
            self._handle, host=self.host, port=self.port
        )
        sock = self._server.sockets[0]
        self.host, self.port = sock.getsockname()[:2]
        self._write_endpoint_file()
        return self.host, self.port

    def _write_endpoint_file(self) -> None:
        """Drop ``<state>/endpoint.json`` so clients and smoke harnesses
        can find a daemon bound to an ephemeral port."""
        path = os.path.join(self.service.state_dir, "endpoint.json")
        try:
            with open(path, "w", encoding="utf-8") as fh:
                json.dump(
                    {
                        "host": self.host,
                        "port": self.port,
                        "pid": os.getpid(),
                        "url": f"http://{self.host}:{self.port}",
                    },
                    fh,
                    sort_keys=True,
                )
        except OSError:
            pass

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        self.service.stop()

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        status, payload = 500, {"error": "internal error"}
        try:
            request = await asyncio.wait_for(reader.readline(), timeout=30.0)
            parts = request.decode("latin-1").split()
            if len(parts) < 2:
                raise _BadRequest("malformed request line")
            method, target = parts[0].upper(), parts[1]
            headers: dict[str, str] = {}
            while True:
                line = await asyncio.wait_for(reader.readline(), timeout=30.0)
                if line in (b"\r\n", b"\n", b""):
                    break
                name, _, value = line.decode("latin-1").partition(":")
                headers[name.strip().lower()] = value.strip()
            length = int(headers.get("content-length", "0") or "0")
            body = await reader.readexactly(length) if length > 0 else b""
            status, payload = await self._route(method, target, body)
        except _BadRequest as exc:
            status, payload = 400, {"error": str(exc)}
        except (asyncio.IncompleteReadError, asyncio.TimeoutError):
            status, payload = 400, {"error": "truncated request"}
        except ConnectionError:
            writer.close()
            return
        except Exception as exc:  # one bad request must not
            # take the daemon down.
            status, payload = 500, {"error": f"{type(exc).__name__}: {exc}"}
        try:
            blob = json.dumps(payload, sort_keys=True).encode("utf-8")
            reason = {200: "OK", 400: "Bad Request", 404: "Not Found",
                      409: "Conflict", 500: "Internal Server Error"}.get(
                status, "OK")
            head = (
                f"HTTP/1.1 {status} {reason}\r\n"
                "Content-Type: application/json\r\n"
                f"Content-Length: {len(blob)}\r\n"
                "Connection: close\r\n\r\n"
            )
            writer.write(head.encode("latin-1") + blob)
            await writer.drain()
        except ConnectionError:
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _route(
        self, method: str, target: str, body: bytes
    ) -> tuple[int, dict[str, Any]]:
        split = urlsplit(target)
        path = split.path.rstrip("/")
        query = {k: v[-1] for k, v in parse_qs(split.query).items()}
        if method == "POST" and path == "/v1/jobs":
            try:
                parsed = json.loads(body.decode("utf-8")) if body else {}
            except (json.JSONDecodeError, UnicodeDecodeError) as exc:
                raise _BadRequest(f"body is not valid JSON: {exc}") from exc
            try:
                # Submission writes fsynced state; keep it off the loop.
                receipt = await asyncio.to_thread(self.service.submit, parsed)
            except ProtocolError as exc:
                return 400, {"error": str(exc)}
            return 200, receipt
        if method == "GET" and path == "/v1/healthz":
            return 200, self.service.health()
        if method == "GET" and path.startswith("/v1/jobs/"):
            rest = path[len("/v1/jobs/"):]
            try:
                if rest.endswith("/results"):
                    job_id = rest[: -len("/results")]
                    return 200, await asyncio.to_thread(
                        self.service.fetch, job_id
                    )
                job_id = rest
                wait_s = float(query.get("wait", "0") or "0")
                detail = query.get("detail", "0") not in ("0", "", "false")
                if wait_s > 0:
                    status = await asyncio.to_thread(
                        self.service.wait_settled, job_id, min(wait_s, 300.0)
                    )
                    if detail:
                        status = self.service.status(job_id, detail=True)
                    return 200, status
                return 200, self.service.status(job_id, detail=detail)
            except KeyError:
                return 404, {"error": f"unknown job {rest.split('/')[0]!r}"}
            except _NotDone as exc:
                return 409, {"error": f"job not fetchable: {exc}"}
            except ValueError as exc:
                raise _BadRequest(str(exc)) from exc
        return 404, {"error": f"no route for {method} {path}"}


class _BadRequest(Exception):
    pass


def serve(
    state_dir: str,
    host: str = DEFAULT_HOST,
    port: int = DEFAULT_PORT,
    jobs: int = 1,
    retry: Optional[RetryPolicy] = None,
    shares: Optional[dict[str, int]] = None,
    default_share: int = DEFAULT_SHARE,
    verbose: bool = False,
) -> int:
    """Blocking entry point for ``repro serve``; returns an exit code."""
    service = SweepService(
        state_dir,
        jobs=jobs,
        retry=retry,
        shares=shares,
        default_share=default_share,
        verbose=verbose,
    )
    server = ServiceServer(service, host=host, port=port)

    async def _main() -> None:
        bound_host, bound_port = await server.start()
        print(
            f"repro-serve listening on http://{bound_host}:{bound_port} "
            f"(state dir {state_dir!r}, jobs={jobs}, "
            f"recovered {service.recovered_jobs} jobs)",
            flush=True,
        )
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        try:
            import signal as _signal

            for sig in (_signal.SIGINT, _signal.SIGTERM):
                loop.add_signal_handler(sig, stop.set)
        except (NotImplementedError, OSError):  # pragma: no cover — non-POSIX
            pass
        await stop.wait()
        print("repro-serve shutting down", flush=True)
        await server.stop()

    try:
        asyncio.run(_main())
    except KeyboardInterrupt:  # pragma: no cover — belt and braces
        pass
    return 0
