"""Criticality-aware overload control for the sweep service.

The paper's core discipline — spend scarce acceleration budget on
critical work first — applied to the reproduction's own serving stack:
under pressure the daemon sheds *low-criticality* submissions first and
keeps admitting *high-criticality* ones until a hard ceiling, instead of
queueing unbounded work and falling over for everyone at once.

Three mechanisms, all deterministic and seedable so tests can pin exact
decisions:

* **criticality derivation** (:func:`criticality_of`) — a submission may
  carry an explicit ``"criticality": "low"|"high"`` field (the
  ``repro submit --criticality`` flag); otherwise it is derived from the
  workload itself: any scenario cell with a ``qos=``-bounded tenant is
  latency-critical, everything else is batch (low).  Criticality never
  joins the cell key — it shapes *admission*, not *results*.
* **admission** (:class:`AdmissionController`) — bounded queue depth and
  per-client in-flight caps.  Between the soft limit and the hard
  ceiling, low-criticality submissions are shed with a probability that
  ramps linearly with queue depth; the draw comes from a seeded
  SHA-256 stream (``sha256(seed | decision#)``), so a given seed and
  request sequence always sheds the same requests.  High-criticality
  submissions are only shed at the hard ceiling.
* **shed accounting** — every decision lands in a bounded in-memory log
  (visible via ``/v1/healthz``), so "low-criticality jobs were rejected
  first" is checkable, not folklore.

A shed submission is answered ``429`` with a ``Retry-After`` hint scaled
to the overload; the client tier (:mod:`repro.service.client`) honors it.
"""

from __future__ import annotations

import hashlib
from collections import deque
from dataclasses import dataclass
from typing import Any, Iterable, Optional

from ..harness.executor import CellSpec
from .protocol import ProtocolError

__all__ = [
    "CRITICALITY_LOW",
    "CRITICALITY_HIGH",
    "CRITICALITIES",
    "OverloadPolicy",
    "AdmissionDecision",
    "AdmissionController",
    "OverloadedError",
    "DrainingError",
    "criticality_of",
]

CRITICALITY_LOW = "low"
CRITICALITY_HIGH = "high"
CRITICALITIES = (CRITICALITY_LOW, CRITICALITY_HIGH)

#: Decisions remembered for /v1/healthz introspection.
SHED_LOG_LIMIT = 256


class OverloadedError(Exception):
    """Submission shed by admission control; maps to HTTP 429."""

    def __init__(self, reason: str, retry_after_s: float) -> None:
        super().__init__(reason)
        self.reason = reason
        self.retry_after_s = retry_after_s


class DrainingError(Exception):
    """The daemon is draining and admits nothing; maps to HTTP 503."""

    def __init__(self, retry_after_s: float = 5.0) -> None:
        super().__init__("service is draining, not accepting submissions")
        self.retry_after_s = retry_after_s


def criticality_of(body: Any, specs: Iterable[CellSpec]) -> str:
    """Criticality of one submission: explicit field, else derived.

    An explicit ``"criticality"`` in the submit body wins (validated
    against :data:`CRITICALITIES`).  Otherwise the submission is
    high-criticality iff any of its cells runs a scenario with a
    ``qos=``-bounded tenant — those are the latency-critical tenants the
    multi-tenant layer (docs/scenarios.md) already distinguishes.
    """
    explicit = body.get("criticality") if isinstance(body, dict) else None
    if explicit is not None:
        value = str(explicit)
        if value not in CRITICALITIES:
            raise ProtocolError(
                f"criticality must be one of {'/'.join(CRITICALITIES)}, "
                f"got {value!r}"
            )
        return value
    for spec in specs:
        if spec.scenario == "off":
            continue
        # Scenario specs arriving here are already canonical (validated
        # by the protocol layer), so a substring probe would do — but
        # parse anyway: the grammar owns what "qos-bounded" means.
        from ..workloads.scenario import parse_scenario

        scenario = parse_scenario(spec.scenario)
        if any(t.qos_ns is not None for t in scenario.tenants):
            return CRITICALITY_HIGH
    return CRITICALITY_LOW


@dataclass(frozen=True)
class OverloadPolicy:
    """Knobs of the admission controller (``repro serve`` flags)."""

    #: Queue depth (unresolved cells) at which low-criticality shedding
    #: starts ramping.
    max_queue_depth: int = 512
    #: Queue depth at which *everything* is shed, criticality regardless.
    hard_queue_depth: int = 2048
    #: Unresolved cells one client may have in flight before further
    #: submissions from it are shed (criticality regardless — the cap is
    #: a fairness bound, not a load bound).
    max_inflight_per_client: int = 4096
    #: Seed of the shed-decision stream (reproducible shedding).
    shed_seed: int = 0

    def __post_init__(self) -> None:
        if self.max_queue_depth < 1:
            raise ValueError("max_queue_depth must be >= 1")
        if self.hard_queue_depth <= self.max_queue_depth:
            raise ValueError(
                "hard_queue_depth must exceed max_queue_depth "
                f"({self.hard_queue_depth} <= {self.max_queue_depth})"
            )
        if self.max_inflight_per_client < 1:
            raise ValueError("max_inflight_per_client must be >= 1")


@dataclass(frozen=True)
class AdmissionDecision:
    """Outcome of one admission check."""

    admitted: bool
    reason: str
    #: Suggested client back-off, seconds (0 when admitted).
    retry_after_s: float = 0.0


@dataclass
class AdmissionStats:
    """Lifetime admission accounting of one controller."""

    admitted: int = 0
    shed_low: int = 0
    shed_high: int = 0
    shed_client_cap: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "admitted": self.admitted,
            "shed_low": self.shed_low,
            "shed_high": self.shed_high,
            "shed_client_cap": self.shed_client_cap,
        }


class AdmissionController:
    """Deterministic, criticality-aware load shedder.

    Pure decision logic plus bounded accounting; no locking — the service
    serializes calls under its own lock, exactly like
    :class:`~repro.service.fairness.FairScheduler`.
    """

    def __init__(self, policy: Optional[OverloadPolicy] = None) -> None:
        self.policy = policy if policy is not None else OverloadPolicy()
        self.stats = AdmissionStats()
        #: Most recent decisions, oldest first (health introspection).
        self.shed_log: deque[dict[str, Any]] = deque(maxlen=SHED_LOG_LIMIT)
        #: Monotonic decision counter — the seed stream position.
        self._seq = 0

    # ------------------------------------------------------------- decisions
    def _draw(self) -> float:
        """Next value of the seeded shed stream, uniform in [0, 1).

        ``sha256(seed | decision#)`` — no global RNG, no hidden state
        beyond the decision counter, so replaying the same request
        sequence against the same seed sheds the same requests.
        """
        blob = hashlib.sha256(
            f"{self.policy.shed_seed}|{self._seq}".encode("utf-8")
        ).digest()
        return int.from_bytes(blob[:8], "big") / float(1 << 64)

    def retry_after_s(self, queue_depth: int) -> float:
        """Back-off hint scaled to the overload, clamped to [1, 60] s."""
        soft = self.policy.max_queue_depth
        excess = max(0, queue_depth - soft) / float(soft)
        return float(max(1, min(60, round(1 + 9 * excess))))

    def decide(
        self,
        client: str,
        criticality: str,
        new_cells: int,
        queue_depth: int,
        client_inflight: int,
    ) -> AdmissionDecision:
        """Admit or shed one submission; records the decision.

        ``queue_depth`` counts unresolved (pending + running) cells
        service-wide, ``client_inflight`` counts the submitting client's
        own unresolved cells, and ``new_cells`` is the submission's
        upper-bound contribution (cache hits and in-flight attaches cost
        nothing, but admission must decide before paying for the probe).
        """
        self._seq += 1
        policy = self.policy
        retry_after = self.retry_after_s(queue_depth)
        decision: AdmissionDecision
        if client_inflight + new_cells > policy.max_inflight_per_client:
            self.stats.shed_client_cap += 1
            decision = AdmissionDecision(
                False,
                f"client {client!r} exceeds its in-flight cap "
                f"({client_inflight} in flight + {new_cells} new > "
                f"{policy.max_inflight_per_client})",
                retry_after,
            )
        elif queue_depth >= policy.hard_queue_depth:
            if criticality == CRITICALITY_HIGH:
                self.stats.shed_high += 1
            else:
                self.stats.shed_low += 1
            decision = AdmissionDecision(
                False,
                f"queue depth {queue_depth} at hard ceiling "
                f"{policy.hard_queue_depth}",
                retry_after,
            )
        elif (
            queue_depth >= policy.max_queue_depth
            and criticality != CRITICALITY_HIGH
        ):
            # Low-criticality shed probability ramps linearly from the
            # soft limit (never below 1/2 once pressure starts — a
            # half-open door drains faster than a flapping one) to
            # certainty at the hard ceiling.
            span = policy.hard_queue_depth - policy.max_queue_depth
            ramp = (queue_depth - policy.max_queue_depth) / float(span)
            shed_p = max(0.5, min(1.0, ramp))
            if self._draw() < shed_p:
                self.stats.shed_low += 1
                decision = AdmissionDecision(
                    False,
                    f"low-criticality shed at queue depth {queue_depth} "
                    f"(soft limit {policy.max_queue_depth}, "
                    f"p={shed_p:.2f})",
                    retry_after,
                )
            else:
                self.stats.admitted += 1
                decision = AdmissionDecision(True, "admitted (survived shed draw)")
        else:
            self.stats.admitted += 1
            decision = AdmissionDecision(True, "admitted")
        self.shed_log.append(
            {
                "seq": self._seq,
                "client": client,
                "criticality": criticality,
                "cells": new_cells,
                "queue_depth": queue_depth,
                "client_inflight": client_inflight,
                "admitted": decision.admitted,
                "reason": decision.reason,
            }
        )
        return decision

    # --------------------------------------------------------- introspection
    def snapshot(self, shed_tail: int = 8) -> dict[str, Any]:
        """Health-endpoint view: counters + the newest shed decisions."""
        recent = [d for d in self.shed_log if not d["admitted"]]
        return {
            "policy": {
                "max_queue_depth": self.policy.max_queue_depth,
                "hard_queue_depth": self.policy.hard_queue_depth,
                "max_inflight_per_client": self.policy.max_inflight_per_client,
                "shed_seed": self.policy.shed_seed,
            },
            "decisions": self._seq,
            **self.stats.as_dict(),
            "recent_shed": recent[-shed_tail:],
        }
