"""Persistent sweep service: daemon, client, protocol, fairness, overload.

ROADMAP item 1 made concrete: the content-addressed, resumable sweep
harness (:mod:`repro.harness`) promoted into long-running infrastructure.
``repro serve`` runs an asyncio job-queue daemon that accepts sweep
requests over HTTP/JSON, deduplicates identical in-flight cells across
clients, streams journal-backed per-cell progress, serves warm-cache
results in O(1) with zero simulation, and enforces per-client concurrency
shares; ``repro submit`` / ``repro status`` / ``repro fetch`` are the
client tier.  The worker tier is an unmodified
:class:`~repro.harness.executor.SweepExecutor`, so served results are
bitwise-identical to the single-process CLI path and the daemon survives
SIGKILL with journal-backed resume.

The overload-control layer (:mod:`repro.service.overload`) sits at the
door: bounded queue depth and per-client in-flight caps, with
criticality-aware shedding — qos-bounded (or explicitly high-criticality)
submissions keep being admitted under pressure while best-effort ones get
``429 + Retry-After`` from a deterministic seeded shed decision.  The
client tier answers with jittered exponential backoff, idempotent
re-submits, and a circuit breaker; :mod:`repro.service.chaos` is the
fault-injecting proxy that proves the loop converges.  See
``docs/service.md``.
"""

from .chaos import FAULT_KINDS, ChaosDecision, ChaosPlan, ChaosProxy
from .client import (
    DEFAULT_URL,
    CircuitBreaker,
    CircuitOpenError,
    ClientRetryPolicy,
    ServiceClient,
    ServiceError,
    ServiceOverloadedError,
    ServiceProtocolError,
    ServiceUnavailableError,
)
from .fairness import DEFAULT_SHARE, FairScheduler
from .overload import (
    CRITICALITIES,
    CRITICALITY_HIGH,
    CRITICALITY_LOW,
    AdmissionController,
    AdmissionDecision,
    DrainingError,
    OverloadedError,
    OverloadPolicy,
    criticality_of,
)
from .protocol import (
    DEFAULT_CLIENT,
    DEFAULT_HOST,
    DEFAULT_PORT,
    MAX_BODY_BYTES,
    MAX_CELLS_PER_SUBMIT,
    PROTOCOL_VERSION,
    ProtocolError,
    expand_submit,
    result_fingerprint,
    spec_from_dict,
    spec_to_dict,
)
from .server import ServiceServer, ServiceShutdownError, SweepService, serve

__all__ = [
    "AdmissionController",
    "AdmissionDecision",
    "CRITICALITIES",
    "CRITICALITY_HIGH",
    "CRITICALITY_LOW",
    "ChaosDecision",
    "ChaosPlan",
    "ChaosProxy",
    "CircuitBreaker",
    "CircuitOpenError",
    "ClientRetryPolicy",
    "DEFAULT_CLIENT",
    "DEFAULT_HOST",
    "DEFAULT_PORT",
    "DEFAULT_SHARE",
    "DEFAULT_URL",
    "DrainingError",
    "FAULT_KINDS",
    "FairScheduler",
    "MAX_BODY_BYTES",
    "MAX_CELLS_PER_SUBMIT",
    "OverloadPolicy",
    "OverloadedError",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "ServiceClient",
    "ServiceError",
    "ServiceOverloadedError",
    "ServiceProtocolError",
    "ServiceServer",
    "ServiceShutdownError",
    "ServiceUnavailableError",
    "SweepService",
    "criticality_of",
    "expand_submit",
    "result_fingerprint",
    "serve",
    "spec_from_dict",
    "spec_to_dict",
]
