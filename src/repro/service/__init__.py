"""Persistent sweep service: daemon, client, protocol, fairness.

ROADMAP item 1 made concrete: the content-addressed, resumable sweep
harness (:mod:`repro.harness`) promoted into long-running infrastructure.
``repro serve`` runs an asyncio job-queue daemon that accepts sweep
requests over HTTP/JSON, deduplicates identical in-flight cells across
clients, streams journal-backed per-cell progress, serves warm-cache
results in O(1) with zero simulation, and enforces per-client concurrency
shares; ``repro submit`` / ``repro status`` / ``repro fetch`` are the
client tier.  The worker tier is an unmodified
:class:`~repro.harness.executor.SweepExecutor`, so served results are
bitwise-identical to the single-process CLI path and the daemon survives
SIGKILL with journal-backed resume.  See ``docs/service.md``.
"""

from .client import (
    DEFAULT_URL,
    ServiceClient,
    ServiceError,
    ServiceUnavailableError,
)
from .fairness import DEFAULT_SHARE, FairScheduler
from .protocol import (
    DEFAULT_CLIENT,
    DEFAULT_HOST,
    DEFAULT_PORT,
    MAX_CELLS_PER_SUBMIT,
    PROTOCOL_VERSION,
    ProtocolError,
    expand_submit,
    result_fingerprint,
    spec_from_dict,
    spec_to_dict,
)
from .server import ServiceServer, SweepService, serve

__all__ = [
    "DEFAULT_CLIENT",
    "DEFAULT_HOST",
    "DEFAULT_PORT",
    "DEFAULT_SHARE",
    "DEFAULT_URL",
    "MAX_CELLS_PER_SUBMIT",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "FairScheduler",
    "ServiceClient",
    "ServiceError",
    "ServiceServer",
    "ServiceUnavailableError",
    "SweepService",
    "expand_submit",
    "result_fingerprint",
    "serve",
    "spec_from_dict",
    "spec_to_dict",
]
