"""Wire protocol of the sweep service (HTTP/JSON, stdlib only).

One protocol module shared by the daemon (:mod:`repro.service.server`) and
the client tier (:mod:`repro.service.client`), so a request expanded on one
side and re-expanded on the other can never disagree about which cells it
names.  Everything on the wire is plain JSON; every cell is identified by
the same content address (:func:`repro.harness.cache.cell_key`) the on-disk
result cache uses, which is what makes cross-client in-flight deduplication
and O(1) warm-cache serving possible.

Endpoints (all responses are JSON objects; errors are ``{"error": msg}``):

===========================  ==============================================
``POST /v1/jobs``            submit a sweep; body is a submit request (see
                             :func:`expand_submit`); returns a receipt
``GET /v1/jobs/<id>``        job progress; ``?detail=1`` adds per-cell
                             states, ``?wait=SEC`` long-polls until the job
                             settles (done/failed) or the deadline passes
``GET /v1/jobs/<id>/results``  results of a finished job, each with a
                             SHA-256 fingerprint of its serialized form
``GET /v1/healthz``          daemon liveness + lifetime sweep stats
===========================  ==============================================

A submit request is a grid, expanded as the cross product
``workloads x policies x budgets x seeds`` (submission order preserved):

.. code-block:: json

    {"client": "alice", "workloads": ["swaptions"],
     "policies": ["fifo", "cata"], "budgets": [8], "seeds": [1],
     "scale": 0.5, "faults": "off"}

Results are byte-identical to the single-process CLI path: the daemon's
worker tier runs the exact same :func:`repro.harness.executor.simulate_cell`
through the exact same :class:`~repro.harness.executor.SweepExecutor`, and
:func:`result_fingerprint` pins the equality.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any

from ..core.policies import EXTRA_POLICIES, POLICIES
from ..harness.executor import CellSpec
from ..runtime.system import RunResult
from ..sim.serialize import result_to_dict
from ..workloads import BENCHMARKS

__all__ = [
    "PROTOCOL_VERSION",
    "DEFAULT_HOST",
    "DEFAULT_PORT",
    "DEFAULT_CLIENT",
    "MAX_CELLS_PER_SUBMIT",
    "MAX_BODY_BYTES",
    "ProtocolError",
    "spec_to_dict",
    "spec_from_dict",
    "expand_submit",
    "result_fingerprint",
]

PROTOCOL_VERSION = 1
DEFAULT_HOST = "127.0.0.1"
DEFAULT_PORT = 8321
DEFAULT_CLIENT = "anon"

#: Upper bound on cells in one submit request — a fat-fingered grid should
#: be rejected at the door, not queued for a week.
MAX_CELLS_PER_SUBMIT = 10_000

#: Upper bound on one HTTP request body.  Even a MAX_CELLS_PER_SUBMIT
#: explicit-cells submission fits comfortably; anything larger is a bug
#: or an attack and is answered 413 before a byte of it is buffered.
MAX_BODY_BYTES = 8 * 1024 * 1024


class ProtocolError(ValueError):
    """Malformed or invalid request body; maps to HTTP 400."""


def spec_to_dict(spec: CellSpec) -> dict[str, Any]:
    """JSON-safe form of one grid cell."""
    return {
        "workload": spec.workload,
        "policy": spec.policy,
        "fast": spec.fast,
        "seed": spec.seed,
        "scale": spec.scale,
        "trace": spec.trace_enabled,
        "faults": spec.faults,
        "scenario": spec.scenario,
    }


def spec_from_dict(data: dict[str, Any]) -> CellSpec:
    """Rebuild (and validate) a :class:`CellSpec` from the wire form."""
    if not isinstance(data, dict):
        raise ProtocolError(f"cell must be an object, got {type(data).__name__}")
    try:
        spec = CellSpec(
            workload=str(data["workload"]),
            policy=str(data["policy"]),
            fast=int(data["fast"]),
            seed=int(data["seed"]),
            scale=float(data["scale"]),
            trace_enabled=bool(data.get("trace", False)),
            faults=str(data.get("faults", "off")),
            scenario=str(data.get("scenario", "off")),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise ProtocolError(f"malformed cell {data!r}: {exc}") from exc
    _validate_spec(spec)
    return spec


def _validate_spec(spec: CellSpec) -> None:
    if spec.scenario != "off":
        # Scenario cells carry their benchmarks inside the spec; the
        # workload field is a display label.  Parse to validate (and to
        # reject non-canonical forms, which would fracture the cache).
        from ..workloads.scenario import parse_scenario

        try:
            canonical = parse_scenario(spec.scenario).canonical()
        except ValueError as exc:
            raise ProtocolError(f"bad scenario {spec.scenario!r}: {exc}") from exc
        if canonical != spec.scenario:
            raise ProtocolError(
                f"scenario {spec.scenario!r} is not canonical "
                f"(expected {canonical!r})"
            )
    elif spec.workload not in BENCHMARKS:
        raise ProtocolError(f"unknown workload {spec.workload!r}")
    if spec.policy not in POLICIES + EXTRA_POLICIES:
        raise ProtocolError(f"unknown policy {spec.policy!r}")
    if spec.fast < 1:
        raise ProtocolError(f"budget must be >= 1, got {spec.fast}")
    if spec.scale <= 0:
        raise ProtocolError(f"scale must be positive, got {spec.scale}")


def _str_list(body: dict[str, Any], field: str) -> list[str]:
    value = body.get(field)
    if not isinstance(value, list) or not value:
        raise ProtocolError(f"{field!r} must be a non-empty list")
    return [str(v) for v in value]


def _int_list(body: dict[str, Any], field: str, default: list[int]) -> list[int]:
    value = body.get(field, default)
    if not isinstance(value, list) or not value:
        raise ProtocolError(f"{field!r} must be a non-empty list")
    try:
        return [int(v) for v in value]
    except (TypeError, ValueError) as exc:
        raise ProtocolError(f"{field!r} must contain integers") from exc


def expand_submit(body: Any) -> tuple[str, list[CellSpec]]:
    """Expand a submit request into ``(client, cells)``.

    Accepts either an explicit ``"cells": [...]`` list or a grid
    (``workloads x policies x budgets x seeds`` at one ``scale`` with one
    ``faults`` spec and, optionally, one canonical ``scenario`` applied to
    every cell).  Order is preserved — duplicates too: deduplication
    is the scheduler's job (and part of its accounting), not the parser's.
    """
    if not isinstance(body, dict):
        raise ProtocolError("request body must be a JSON object")
    client = str(body.get("client", DEFAULT_CLIENT)) or DEFAULT_CLIENT
    if "cells" in body:
        raw = body["cells"]
        if not isinstance(raw, list) or not raw:
            raise ProtocolError("'cells' must be a non-empty list")
        cells = [spec_from_dict(c) for c in raw]
    else:
        workloads = _str_list(body, "workloads")
        policies = _str_list(body, "policies")
        budgets = _int_list(body, "budgets", [8])
        seeds = _int_list(body, "seeds", [1])
        try:
            scale = float(body.get("scale", 1.0))
        except (TypeError, ValueError) as exc:
            raise ProtocolError("'scale' must be a number") from exc
        faults = str(body.get("faults", "off"))
        trace = bool(body.get("trace", False))
        scenario = str(body.get("scenario", "off"))
        cells = [
            CellSpec(
                workload=w, policy=p, fast=f, seed=s, scale=scale,
                trace_enabled=trace, faults=faults, scenario=scenario,
            )
            for w in workloads
            for p in policies
            for f in budgets
            for s in seeds
        ]
        for spec in cells:
            _validate_spec(spec)
    if len(cells) > MAX_CELLS_PER_SUBMIT:
        raise ProtocolError(
            f"{len(cells)} cells exceeds the per-submit limit of "
            f"{MAX_CELLS_PER_SUBMIT}"
        )
    return client, cells


def result_fingerprint(result: RunResult) -> str:
    """SHA-256 of the canonical serialized result.

    The same digest the golden-fingerprint tests pin, so "the daemon
    returned byte-identical results to the CLI path" is checkable from
    both sides of the wire.
    """
    blob = json.dumps(result_to_dict(result), sort_keys=True)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()
