"""Client tier of the sweep service: ``repro submit/status/fetch``.

A thin, dependency-free (``http.client``) JSON client for the daemon's
protocol (:mod:`repro.service.protocol`).  One connection per request —
the daemon speaks ``Connection: close`` — wrapped in a resilience layer
built for an unreliable path to the daemon (docs/service.md, "Overload &
resilience"):

* **jittered exponential backoff** (:class:`ClientRetryPolicy`) with a
  seeded jitter stream, so a retry schedule is exactly reproducible;
  a server ``Retry-After`` (429 shed / 503 drain) overrides the computed
  delay; a bounded retry budget caps total time spent waiting;
* **idempotent re-submit**: every submission carries an
  ``idempotency_key``; a retried ``POST /v1/jobs`` whose first attempt
  actually landed is answered with the original receipt instead of a
  duplicate job (and would be harmless even without the key — cells are
  content-addressed and dedup on their keys);
* **typed errors**: truncated or non-JSON response bodies raise
  :class:`ServiceProtocolError` (retryable) instead of leaking a bare
  ``json.JSONDecodeError``;
* a **circuit breaker** for connection-level failures: after
  ``failure_threshold`` consecutive failures the breaker opens and calls
  fail fast with :class:`CircuitOpenError`; after ``reset_after_s`` one
  half-open probe is let through and its outcome closes or re-opens the
  circuit.

The clock and sleep functions are injectable, so every time-dependent
behavior above is testable without waiting.
"""

from __future__ import annotations

import http.client
import json
import os
import random
import socket
import time
from dataclasses import dataclass
from typing import Any, Callable, Optional
from urllib.parse import urlsplit

from .protocol import DEFAULT_CLIENT, DEFAULT_HOST, DEFAULT_PORT

__all__ = [
    "DEFAULT_URL",
    "ServiceError",
    "ServiceUnavailableError",
    "ServiceProtocolError",
    "ServiceOverloadedError",
    "CircuitOpenError",
    "ClientRetryPolicy",
    "CircuitBreaker",
    "ServiceClient",
]

DEFAULT_URL = f"http://{DEFAULT_HOST}:{DEFAULT_PORT}"


class ServiceError(RuntimeError):
    """The daemon answered with a non-200 status."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.message = message


class ServiceUnavailableError(ServiceError):
    """No daemon reachable at the configured URL."""

    def __init__(self, url: str, reason: str) -> None:
        RuntimeError.__init__(
            self, f"no sweep daemon reachable at {url} ({reason}); "
            "start one with `repro serve`"
        )
        self.status = 0
        self.message = reason


class ServiceProtocolError(ServiceError):
    """The daemon's response was truncated or not valid JSON.

    Distinct from :class:`ServiceError` so callers (and the retry loop)
    can tell "the daemon said no" from "the bytes never arrived whole" —
    the latter is a transport problem and safely retryable.
    """

    def __init__(self, status: int, reason: str) -> None:
        RuntimeError.__init__(
            self, f"malformed response from daemon (HTTP {status}): {reason}"
        )
        self.status = status
        self.message = reason


class ServiceOverloadedError(ServiceError):
    """429 (criticality shed) or 503 (draining), with the server's
    ``Retry-After`` hint when it sent one."""

    def __init__(
        self, status: int, message: str, retry_after_s: Optional[float]
    ) -> None:
        super().__init__(status, message)
        self.retry_after_s = retry_after_s


class CircuitOpenError(ServiceUnavailableError):
    """Failing fast: the circuit breaker is open after repeated
    connection-level failures; no request was attempted."""

    def __init__(self, url: str, retry_in_s: float) -> None:
        ServiceUnavailableError.__init__(
            self, url,
            f"circuit breaker open (probe allowed in {retry_in_s:.1f}s)",
        )


@dataclass(frozen=True)
class ClientRetryPolicy:
    """Retry/backoff behavior of one :class:`ServiceClient`.

    Mirrors the executor's :class:`~repro.harness.executor.RetryPolicy`
    idiom: exponential base doubling per attempt, jitter drawn from a
    seeded RNG so the schedule is reproducible, hard cap per delay plus a
    total budget across one logical request.
    """

    #: Total tries per request (first attempt included).
    max_attempts: int = 5
    backoff_base_s: float = 0.25
    backoff_cap_s: float = 30.0
    #: Seed of the jitter RNG; the stream restarts per request, so two
    #: identical requests see identical schedules.
    jitter_seed: int = 0
    #: Total seconds the client will spend sleeping between retries of
    #: one request before giving up with the last error.
    retry_budget_s: float = 60.0
    #: Obey a server ``Retry-After`` instead of the computed backoff.
    honor_retry_after: bool = True

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.backoff_base_s <= 0 or self.backoff_cap_s <= 0:
            raise ValueError("backoff values must be positive")
        if self.retry_budget_s < 0:
            raise ValueError("retry_budget_s must be >= 0")

    def backoff_s(self, attempt: int, rng: random.Random) -> float:
        """Jittered exponential delay before retry number ``attempt``."""
        base = min(self.backoff_cap_s, self.backoff_base_s * (2 ** (attempt - 1)))
        return base * (0.5 + 0.5 * rng.random())

    def schedule(self, retries: Optional[int] = None) -> list[float]:
        """The deterministic delay sequence one request would see.

        ``schedule()[i]`` is the sleep before retry ``i + 1`` (server
        ``Retry-After`` overrides individual entries at run time).
        """
        n = self.max_attempts - 1 if retries is None else retries
        rng = random.Random(self.jitter_seed)
        return [self.backoff_s(attempt, rng) for attempt in range(1, n + 1)]

    @classmethod
    def none(cls) -> "ClientRetryPolicy":
        """Single attempt, no retries (the pre-overload-layer behavior)."""
        return cls(max_attempts=1)


class CircuitBreaker:
    """Open/half-open/closed breaker over connection-level failures.

    Not thread-safe on its own (each :class:`ServiceClient` owns one and
    the client itself is documented single-threaded); the clock is
    injectable for tests.
    """

    def __init__(
        self,
        failure_threshold: int = 5,
        reset_after_s: float = 15.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if reset_after_s <= 0:
            raise ValueError("reset_after_s must be positive")
        self.failure_threshold = failure_threshold
        self.reset_after_s = reset_after_s
        self._clock = clock
        self.state = "closed"
        self.consecutive_failures = 0
        self._opened_at = 0.0

    def allow(self) -> bool:
        """May a request proceed right now?

        An open breaker lets exactly one probe through once
        ``reset_after_s`` has elapsed (transitioning to half-open); the
        probe's outcome closes or re-opens the circuit.
        """
        if self.state == "closed":
            return True
        if self.state == "open":
            if self._clock() - self._opened_at >= self.reset_after_s:
                self.state = "half-open"
                return True
            return False
        # half-open: one probe is already in flight.
        return False

    def retry_in_s(self) -> float:
        """Seconds until an open breaker will allow its probe."""
        if self.state != "open":
            return 0.0
        return max(0.0, self.reset_after_s - (self._clock() - self._opened_at))

    def record_success(self) -> None:
        self.state = "closed"
        self.consecutive_failures = 0

    def record_failure(self) -> None:
        self.consecutive_failures += 1
        if (
            self.state == "half-open"
            or self.consecutive_failures >= self.failure_threshold
        ):
            self.state = "open"
            self._opened_at = self._clock()


class ServiceClient:
    """Blocking JSON client for one sweep daemon (single-threaded)."""

    def __init__(
        self,
        url: str = DEFAULT_URL,
        timeout_s: float = 60.0,
        retry: Optional[ClientRetryPolicy] = None,
        breaker: Optional[CircuitBreaker] = None,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        split = urlsplit(url if "//" in url else f"http://{url}")
        if split.scheme not in ("", "http"):
            raise ValueError(f"only http:// URLs are supported, got {url!r}")
        self.host = split.hostname or DEFAULT_HOST
        self.port = split.port or DEFAULT_PORT
        self.url = f"http://{self.host}:{self.port}"
        self.timeout_s = timeout_s
        self.retry = retry if retry is not None else ClientRetryPolicy()
        self.breaker = breaker if breaker is not None else CircuitBreaker()
        self._sleep = sleep

    # ------------------------------------------------------------- transport
    def _request_once(
        self,
        method: str,
        path: str,
        body: Optional[dict[str, Any]] = None,
        timeout_s: Optional[float] = None,
    ) -> dict[str, Any]:
        """One HTTP exchange; raises the typed error for its outcome."""
        conn = http.client.HTTPConnection(
            self.host, self.port,
            timeout=timeout_s if timeout_s is not None else self.timeout_s,
        )
        try:
            payload = (
                json.dumps(body, sort_keys=True).encode("utf-8")
                if body is not None
                else None
            )
            headers = {"Content-Type": "application/json"} if payload else {}
            conn.request(method, path, body=payload, headers=headers)
            response = conn.getresponse()
            raw = response.read()
            retry_after_raw = response.getheader("Retry-After")
        except (ConnectionError, socket.timeout, socket.gaierror,
                http.client.HTTPException, OSError) as exc:
            raise ServiceUnavailableError(self.url, str(exc)) from exc
        finally:
            conn.close()
        try:
            data = json.loads(raw.decode("utf-8")) if raw else {}
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            # A complete HTTP status with an undecodable body: truncated
            # mid-flight, or not our daemon.  Typed so callers can retry.
            raise ServiceProtocolError(
                response.status, f"undecodable response body: {exc}"
            ) from exc
        if response.status != 200:
            message = (
                data.get("error", raw.decode("utf-8", "replace"))
                if isinstance(data, dict)
                else str(data)
            )
            if response.status in (429, 503):
                retry_after: Optional[float] = None
                if retry_after_raw is not None:
                    try:
                        retry_after = float(retry_after_raw)
                    except ValueError:
                        retry_after = None
                if retry_after is None and isinstance(data, dict):
                    hinted = data.get("retry_after_s")
                    if isinstance(hinted, (int, float)):
                        retry_after = float(hinted)
                raise ServiceOverloadedError(
                    response.status, message, retry_after
                )
            raise ServiceError(response.status, message)
        return data

    @staticmethod
    def _retryable(exc: ServiceError) -> bool:
        if isinstance(
            exc,
            (ServiceUnavailableError, ServiceProtocolError,
             ServiceOverloadedError),
        ):
            return True
        # Injected/transient infrastructure errors; the daemon's own
        # verdicts (400/404/409) are final.
        return exc.status >= 500

    def _request(
        self,
        method: str,
        path: str,
        body: Optional[dict[str, Any]] = None,
        timeout_s: Optional[float] = None,
        idempotent: bool = True,
    ) -> dict[str, Any]:
        """Retry loop around :meth:`_request_once`.

        Non-idempotent requests (a POST without an idempotency key) are
        never retried.  The jitter RNG restarts here, so a request's
        backoff schedule is exactly ``retry.schedule()``.
        """
        policy = self.retry
        rng = random.Random(policy.jitter_seed)
        budget = policy.retry_budget_s
        attempt = 0
        while True:
            attempt += 1
            if not self.breaker.allow():
                raise CircuitOpenError(self.url, self.breaker.retry_in_s())
            try:
                result = self._request_once(
                    method, path, body=body, timeout_s=timeout_s
                )
            except ServiceError as exc:
                # Any complete HTTP response proves the connection path
                # works; only transport-level failures feed the breaker.
                if isinstance(
                    exc, (ServiceUnavailableError, ServiceProtocolError)
                ):
                    self.breaker.record_failure()
                else:
                    self.breaker.record_success()
                retryable = (
                    idempotent
                    and self._retryable(exc)
                    and attempt < policy.max_attempts
                )
                if not retryable:
                    raise
                delay = policy.backoff_s(attempt, rng)
                if (
                    policy.honor_retry_after
                    and isinstance(exc, ServiceOverloadedError)
                    and exc.retry_after_s is not None
                ):
                    delay = exc.retry_after_s
                if delay > budget:
                    raise
                budget -= delay
                if delay > 0:
                    self._sleep(delay)
                continue
            self.breaker.record_success()
            return result

    # ------------------------------------------------------------------- API
    def submit(
        self,
        workloads: list[str],
        policies: list[str],
        budgets: Optional[list[int]] = None,
        seeds: Optional[list[int]] = None,
        scale: float = 1.0,
        faults: str = "off",
        client: str = DEFAULT_CLIENT,
        criticality: Optional[str] = None,
    ) -> dict[str, Any]:
        """Submit a grid; returns the daemon's receipt (``job`` id &c.)."""
        body: dict[str, Any] = {
            "client": client,
            "workloads": workloads,
            "policies": policies,
            "budgets": budgets if budgets is not None else [8],
            "seeds": seeds if seeds is not None else [1],
            "scale": scale,
            "faults": faults,
        }
        if criticality is not None:
            body["criticality"] = criticality
        return self.submit_body(body)

    def submit_body(self, body: dict[str, Any]) -> dict[str, Any]:
        """Submit a raw protocol body (grid or explicit ``cells`` list).

        Injects a fresh ``idempotency_key`` when the body carries none:
        retries of this call can then never double-register the job, and
        even a duplicate registration would be harmless — cells are
        content-addressed and dedup on their keys.
        """
        if "idempotency_key" not in body:
            body = dict(body)
            body["idempotency_key"] = os.urandom(16).hex()
        return self._request("POST", "/v1/jobs", body=body)

    def status(
        self, job_id: str, detail: bool = False, wait_s: float = 0.0
    ) -> dict[str, Any]:
        """Job progress; ``wait_s > 0`` long-polls until the job settles."""
        query = []
        if detail:
            query.append("detail=1")
        if wait_s > 0:
            query.append(f"wait={wait_s:g}")
        path = f"/v1/jobs/{job_id}" + ("?" + "&".join(query) if query else "")
        timeout = self.timeout_s + wait_s if wait_s > 0 else None
        return self._request("GET", path, timeout_s=timeout)

    def wait(
        self, job_id: str, timeout_s: float = 3600.0, poll_s: float = 30.0
    ) -> dict[str, Any]:
        """Long-poll (in ``poll_s`` slices) until done/failed or timeout."""
        deadline = time.monotonic() + timeout_s
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                return self.status(job_id)
            status = self.status(job_id, wait_s=min(poll_s, remaining))
            if status.get("state") in ("done", "failed"):
                return status

    def fetch(self, job_id: str) -> dict[str, Any]:
        """Results of a finished job (serialized results + fingerprints)."""
        return self._request("GET", f"/v1/jobs/{job_id}/results")

    def health(self) -> dict[str, Any]:
        return self._request("GET", "/v1/healthz")

    def drain(self) -> dict[str, Any]:
        """Ask the daemon to drain: stop admissions, finish in-flight
        work, checkpoint and exit."""
        return self._request(
            "POST", "/v1/admin/drain", body={}, idempotent=True
        )
