"""Client tier of the sweep service: ``repro submit/status/fetch``.

A thin, dependency-free (``http.client``) JSON client for the daemon's
protocol (:mod:`repro.service.protocol`).  One connection per request —
the daemon speaks ``Connection: close`` — which keeps the client trivially
robust against daemon restarts: a request either gets a complete JSON
response or raises :class:`ServiceUnavailableError`.
"""

from __future__ import annotations

import http.client
import json
import socket
from typing import Any, Optional
from urllib.parse import urlsplit

from .protocol import DEFAULT_CLIENT, DEFAULT_HOST, DEFAULT_PORT

__all__ = [
    "DEFAULT_URL",
    "ServiceError",
    "ServiceUnavailableError",
    "ServiceClient",
]

DEFAULT_URL = f"http://{DEFAULT_HOST}:{DEFAULT_PORT}"


class ServiceError(RuntimeError):
    """The daemon answered with a non-200 status."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.message = message


class ServiceUnavailableError(ServiceError):
    """No daemon reachable at the configured URL."""

    def __init__(self, url: str, reason: str) -> None:
        RuntimeError.__init__(
            self, f"no sweep daemon reachable at {url} ({reason}); "
            "start one with `repro serve`"
        )
        self.status = 0
        self.message = reason


class ServiceClient:
    """Blocking JSON client for one sweep daemon."""

    def __init__(self, url: str = DEFAULT_URL, timeout_s: float = 60.0) -> None:
        split = urlsplit(url if "//" in url else f"http://{url}")
        if split.scheme not in ("", "http"):
            raise ValueError(f"only http:// URLs are supported, got {url!r}")
        self.host = split.hostname or DEFAULT_HOST
        self.port = split.port or DEFAULT_PORT
        self.url = f"http://{self.host}:{self.port}"
        self.timeout_s = timeout_s

    # ------------------------------------------------------------- transport
    def _request(
        self,
        method: str,
        path: str,
        body: Optional[dict[str, Any]] = None,
        timeout_s: Optional[float] = None,
    ) -> dict[str, Any]:
        conn = http.client.HTTPConnection(
            self.host, self.port,
            timeout=timeout_s if timeout_s is not None else self.timeout_s,
        )
        try:
            payload = (
                json.dumps(body, sort_keys=True).encode("utf-8")
                if body is not None
                else None
            )
            headers = {"Content-Type": "application/json"} if payload else {}
            conn.request(method, path, body=payload, headers=headers)
            response = conn.getresponse()
            raw = response.read()
        except (ConnectionError, socket.timeout, socket.gaierror, OSError) as exc:
            raise ServiceUnavailableError(self.url, str(exc)) from exc
        finally:
            conn.close()
        try:
            data = json.loads(raw.decode("utf-8")) if raw else {}
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise ServiceError(
                response.status, f"undecodable response body: {exc}"
            ) from exc
        if response.status != 200:
            message = (
                data.get("error", raw.decode("utf-8", "replace"))
                if isinstance(data, dict)
                else str(data)
            )
            raise ServiceError(response.status, message)
        return data

    # ------------------------------------------------------------------- API
    def submit(
        self,
        workloads: list[str],
        policies: list[str],
        budgets: Optional[list[int]] = None,
        seeds: Optional[list[int]] = None,
        scale: float = 1.0,
        faults: str = "off",
        client: str = DEFAULT_CLIENT,
    ) -> dict[str, Any]:
        """Submit a grid; returns the daemon's receipt (``job`` id &c.)."""
        body: dict[str, Any] = {
            "client": client,
            "workloads": workloads,
            "policies": policies,
            "budgets": budgets if budgets is not None else [8],
            "seeds": seeds if seeds is not None else [1],
            "scale": scale,
            "faults": faults,
        }
        return self.submit_body(body)

    def submit_body(self, body: dict[str, Any]) -> dict[str, Any]:
        """Submit a raw protocol body (grid or explicit ``cells`` list)."""
        return self._request("POST", "/v1/jobs", body=body)

    def status(
        self, job_id: str, detail: bool = False, wait_s: float = 0.0
    ) -> dict[str, Any]:
        """Job progress; ``wait_s > 0`` long-polls until the job settles."""
        query = []
        if detail:
            query.append("detail=1")
        if wait_s > 0:
            query.append(f"wait={wait_s:g}")
        path = f"/v1/jobs/{job_id}" + ("?" + "&".join(query) if query else "")
        timeout = self.timeout_s + wait_s if wait_s > 0 else None
        return self._request("GET", path, timeout_s=timeout)

    def wait(
        self, job_id: str, timeout_s: float = 3600.0, poll_s: float = 30.0
    ) -> dict[str, Any]:
        """Long-poll (in ``poll_s`` slices) until done/failed or timeout."""
        import time as _time

        deadline = _time.monotonic() + timeout_s
        while True:
            remaining = deadline - _time.monotonic()
            if remaining <= 0:
                return self.status(job_id)
            status = self.status(job_id, wait_s=min(poll_s, remaining))
            if status.get("state") in ("done", "failed"):
                return status

    def fetch(self, job_id: str) -> dict[str, Any]:
        """Results of a finished job (serialized results + fingerprints)."""
        return self._request("GET", f"/v1/jobs/{job_id}/results")

    def health(self) -> dict[str, Any]:
        return self._request("GET", "/v1/healthz")
