"""Deterministic fault-injecting TCP proxy for the sweep service.

The HTTP chaos harness (``scripts/service_chaos_smoke.py``) puts this
proxy between a :class:`~repro.service.client.ServiceClient` and a real
daemon and walks a fault ladder: connection resets, truncated responses,
injected 5xx, latency spikes.  The client's retry/backoff/circuit-breaker
machinery must converge to byte-identical results through every rung.

Determinism is the whole point: each accepted connection gets a
monotonically increasing index, and its fate is drawn from
``sha256(seed | index)`` — no global RNG, no wall-clock coupling — so a
given :class:`ChaosPlan` replays the exact same fault schedule every run.

Transport model matches the daemon's (HTTP/1.1, one request per
connection, ``Connection: close``), which keeps the proxy a dumb byte
pump: client bytes stream upstream until the client half-closes or the
response completes; upstream bytes stream back subject to the injected
fault.
"""

from __future__ import annotations

import hashlib
import random
import socket
import struct
import threading
from dataclasses import dataclass
from typing import Any, Optional

__all__ = ["FAULT_KINDS", "ChaosPlan", "ChaosDecision", "ChaosProxy"]

#: Injectable fault kinds, severity order (see :meth:`ChaosPlan.decide`).
FAULT_KINDS = ("reset", "error500", "truncate", "delay", "none")

_CHUNK = 65536
_SYNTH_500 = (
    b"HTTP/1.1 500 Internal Server Error\r\n"
    b"Content-Type: application/json\r\n"
    b"Content-Length: 29\r\n"
    b"Connection: close\r\n\r\n"
    b'{"error": "chaos: injected"}\n'
)


@dataclass(frozen=True)
class ChaosDecision:
    """Fate of one proxied connection."""

    kind: str
    #: Response bytes forwarded before the cut (``truncate`` only).
    truncate_at: int = 0
    #: Seconds to stall before forwarding the response (``delay`` only).
    delay_s: float = 0.0


@dataclass(frozen=True)
class ChaosPlan:
    """Seeded fault mix; rates are per-connection probabilities.

    Rates are evaluated cumulatively in :data:`FAULT_KINDS` order against
    one uniform draw, so ``reset_rate + error_rate + truncate_rate +
    delay_rate <= 1`` must hold; the remainder passes clean.
    """

    seed: int = 0
    reset_rate: float = 0.0
    error_rate: float = 0.0
    truncate_rate: float = 0.0
    delay_rate: float = 0.0
    #: Latency-spike length for ``delay`` connections.
    delay_s: float = 0.05

    def __post_init__(self) -> None:
        total = (
            self.reset_rate + self.error_rate
            + self.truncate_rate + self.delay_rate
        )
        for name in ("reset_rate", "error_rate", "truncate_rate", "delay_rate"):
            if not 0.0 <= getattr(self, name) <= 1.0:
                raise ValueError(f"{name} must be in [0, 1]")
        if total > 1.0 + 1e-9:
            raise ValueError(f"fault rates sum to {total:.3f} > 1")
        if self.delay_s < 0:
            raise ValueError("delay_s must be >= 0")

    def decide(self, conn_index: int) -> ChaosDecision:
        """Deterministic fate of connection number ``conn_index``."""
        digest = hashlib.sha256(
            f"{self.seed}|{conn_index}".encode("utf-8")
        ).digest()
        rng = random.Random(int.from_bytes(digest[:8], "big"))
        draw = rng.random()
        edge = self.reset_rate
        if draw < edge:
            return ChaosDecision("reset")
        edge += self.error_rate
        if draw < edge:
            return ChaosDecision("error500")
        edge += self.truncate_rate
        if draw < edge:
            # Cut somewhere inside a plausible response: after the status
            # line at the earliest, mid-body at the latest.
            return ChaosDecision("truncate", truncate_at=rng.randint(12, 200))
        edge += self.delay_rate
        if draw < edge:
            return ChaosDecision("delay", delay_s=self.delay_s)
        return ChaosDecision("none")


class ChaosProxy:
    """Threaded TCP proxy injecting a seeded :class:`ChaosPlan`.

    @guarded_by("_lock"): _conn_seq, counts

    Start with :meth:`start` (binds an ephemeral port by default), point a
    client at ``http://host:port``, stop with :meth:`stop`.  Usable as a
    context manager.
    """

    def __init__(
        self,
        upstream_host: str,
        upstream_port: int,
        plan: ChaosPlan,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.upstream = (upstream_host, upstream_port)
        self.plan = plan
        self.host = host
        self.port = port
        #: Injected-fault counters, by kind (``none`` = passed clean).
        self.counts: dict[str, int] = {kind: 0 for kind in FAULT_KINDS}
        self._conn_seq = 0
        self._lock = threading.Lock()
        self._listener: Optional[socket.socket] = None
        self._accept_thread: Optional[threading.Thread] = None
        self._stop = threading.Event()

    # ------------------------------------------------------------ lifecycle
    def start(self) -> tuple[str, int]:
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self.host, self.port))
        listener.listen(32)
        listener.settimeout(0.2)
        self.host, self.port = listener.getsockname()[:2]
        self._listener = listener
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="chaos-proxy-accept", daemon=True
        )
        self._accept_thread.start()
        return self.host, self.port

    def stop(self) -> None:
        self._stop.set()
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=5.0)
            self._accept_thread = None
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
            self._listener = None

    def __enter__(self) -> "ChaosProxy":
        self.start()
        return self

    def __exit__(self, *exc: Any) -> None:
        self.stop()

    def snapshot(self) -> dict[str, int]:
        with self._lock:
            return dict(self.counts)

    # ------------------------------------------------------------- plumbing
    def _accept_loop(self) -> None:
        assert self._listener is not None
        while not self._stop.is_set():
            try:
                conn, _ = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            with self._lock:
                index = self._conn_seq
                self._conn_seq += 1
            decision = self.plan.decide(index)
            with self._lock:
                self.counts[decision.kind] += 1
            threading.Thread(
                target=self._handle,
                args=(conn, decision),
                name=f"chaos-proxy-conn-{index}",
                daemon=True,
            ).start()

    def _handle(self, conn: socket.socket, decision: ChaosDecision) -> None:
        try:
            conn.settimeout(30.0)
            if decision.kind == "reset":
                # RST, not FIN: SO_LINGER(0) makes close() abortive, so
                # the client sees ECONNRESET — a genuine connection-level
                # failure, which is what the breaker counts.
                self._drain_request_head(conn)
                conn.setsockopt(
                    socket.SOL_SOCKET, socket.SO_LINGER,
                    struct.pack("ii", 1, 0),
                )
                return
            if decision.kind == "error500":
                self._drain_request_head(conn)
                conn.sendall(_SYNTH_500)
                return
            self._pump(conn, decision)
        except (OSError, ValueError):
            pass
        finally:
            try:
                conn.close()
            except OSError:
                pass

    @staticmethod
    def _drain_request_head(conn: socket.socket) -> None:
        """Read until the request is plausibly complete (headers + body).

        Injected-fate connections never reach upstream; reading the
        request first keeps the failure response-shaped (the client sent
        everything, then the service "failed") rather than a send error.
        """
        data = b""
        while b"\r\n\r\n" not in data and len(data) < 65536:
            chunk = conn.recv(_CHUNK)
            if not chunk:
                return
            data += chunk
        head, _, body = data.partition(b"\r\n\r\n")
        length = 0
        for line in head.split(b"\r\n"):
            name, _, value = line.partition(b":")
            if name.strip().lower() == b"content-length":
                try:
                    length = int(value.strip())
                except ValueError:
                    length = 0
        while len(body) < length:
            chunk = conn.recv(_CHUNK)
            if not chunk:
                return
            body += chunk

    def _pump(self, conn: socket.socket, decision: ChaosDecision) -> None:
        """Forward one request/response exchange through the fault."""
        upstream = socket.create_connection(self.upstream, timeout=30.0)
        try:
            upstream.settimeout(30.0)
            # Client -> upstream: the daemon answers only after the full
            # request, so pump until the response starts flowing.  A
            # half-close from the client ends the request side.
            forwarder = threading.Thread(
                target=self._forward_request,
                args=(conn, upstream),
                daemon=True,
            )
            forwarder.start()
            if decision.kind == "delay":
                self._stop.wait(decision.delay_s)
            sent = 0
            limit = (
                decision.truncate_at
                if decision.kind == "truncate"
                else None
            )
            while True:
                chunk = upstream.recv(_CHUNK)
                if not chunk:
                    break
                if limit is not None and sent + len(chunk) >= limit:
                    conn.sendall(chunk[: limit - sent])
                    return
                conn.sendall(chunk)
                sent += len(chunk)
            forwarder.join(timeout=1.0)
        finally:
            try:
                upstream.close()
            except OSError:
                pass

    @staticmethod
    def _forward_request(conn: socket.socket, upstream: socket.socket) -> None:
        try:
            while True:
                chunk = conn.recv(_CHUNK)
                if not chunk:
                    break
                upstream.sendall(chunk)
            upstream.shutdown(socket.SHUT_WR)
        except OSError:
            pass
