"""Multi-tenant fair scheduling: weighted round-robin over client queues.

The daemon serves several clients from one worker tier; without fairness a
single client submitting a 5000-cell grid would starve everyone behind it.
The scheduler keeps one FIFO per client and deals cells out in rotation —
each visit grants a client up to its *share* (concurrency weight) before
moving on, and the rotation cursor persists across calls, so over time
client ``c`` receives ``share_c / sum(shares)`` of the worker slots while
contended, and everything when alone.

Pure data structure, no locking — the service serializes access under its
own lock — and deterministic: rotation order is first-seen submission
order, never hash order.
"""

from __future__ import annotations

from collections import OrderedDict, deque
from typing import Any, Optional

__all__ = ["DEFAULT_SHARE", "FairScheduler"]

#: Concurrency share of a client the operator didn't configure explicitly.
DEFAULT_SHARE = 2


class FairScheduler:
    """Weighted round-robin dealer over per-client FIFO queues."""

    def __init__(
        self,
        default_share: int = DEFAULT_SHARE,
        shares: Optional[dict[str, int]] = None,
    ) -> None:
        if default_share < 1:
            raise ValueError(f"default_share must be >= 1, got {default_share}")
        self.default_share = default_share
        self._shares: dict[str, int] = {}
        for client, share in (shares or {}).items():
            self.set_share(client, share)
        #: Per-client FIFOs, in first-seen order (deterministic rotation).
        self._queues: "OrderedDict[str, deque[Any]]" = OrderedDict()
        #: Name of the client the next take() visit starts *after*.
        self._cursor: Optional[str] = None

    def set_share(self, client: str, share: int) -> None:
        if share < 1:
            raise ValueError(f"share for {client!r} must be >= 1, got {share}")
        self._shares[client] = share

    def share(self, client: str) -> int:
        return self._shares.get(client, self.default_share)

    def enqueue(self, client: str, item: Any) -> None:
        self._queues.setdefault(client, deque()).append(item)

    def pending(self) -> int:
        return sum(len(q) for q in self._queues.values())

    def pending_for(self, client: str) -> int:
        """Queued (not yet dealt) items of one client — the admission
        controller's per-client in-flight signal."""
        queue = self._queues.get(client)
        return len(queue) if queue is not None else 0

    def __len__(self) -> int:
        return self.pending()

    def clients(self) -> list[str]:
        """Clients with queued work, rotation order."""
        return [c for c, q in self._queues.items() if q]

    def take(self, max_items: int) -> list[Any]:
        """Deal out up to ``max_items`` queued items, fairly.

        Round-robin over the clients with queued work, starting after the
        client the previous call stopped at; each visit grants a client up
        to its share.  Rounds repeat until ``max_items`` are dealt or every
        queue is empty, so a lone client still gets a full batch.
        """
        if max_items < 1:
            return []
        dealt: list[Any] = []
        while len(dealt) < max_items:
            order = self.clients()
            if not order:
                break
            # Rotate so the round starts after the previous cursor.
            if self._cursor in order:
                pivot = order.index(self._cursor) + 1
                order = order[pivot:] + order[:pivot]
            progressed = False
            for client in order:
                queue = self._queues[client]
                grant = min(self.share(client), max_items - len(dealt))
                while grant > 0 and queue:
                    dealt.append(queue.popleft())
                    grant -= 1
                    progressed = True
                self._cursor = client
                if len(dealt) >= max_items:
                    break
            if not progressed:
                break
        # Drop drained queues so rotation only visits live clients (their
        # configured shares persist).
        for client in [c for c, q in self._queues.items() if not q]:
            del self._queues[client]
        return dealt
