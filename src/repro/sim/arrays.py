"""Flat-array simulation kernels (ROADMAP item 1).

The engine's remaining cost after the PR 2 inner-loop work is per-event
Python *object* churn in three hot paths: TDG bottom-level relaxation,
per-state-change energy accrual, and per-cell setup inside sweep workers.
This module provides the flat-buffer backing for all three:

* :class:`BottomLevelState` — task-id-indexed bottom-level / finished /
  histogram buffers plus a CSR predecessor adjacency built incrementally
  on every ``submit``.  :meth:`BottomLevelState.submit` is the
  kernelized replacement for the ``TaskGraph`` add +
  ``_relax_bottom_levels`` pair: identical visit order, identical
  visit-budget semantics, identical ``bl_edges_visited`` counts.
* :class:`TransitionLog` — append-only flat ``(t, core, power, bucket)``
  buffers that let :class:`~repro.sim.energy.EnergyAccountant` integrate
  energy in one sweep instead of accruing on every ``set_state`` edge.
* :class:`KernelArena` — per-worker-process reusable buffers and
  per-machine-fingerprint memo dictionaries, so one pool worker can
  simulate many cells back-to-back (``--batch-cells``) without repeating
  setup work and without the unbounded/id-aliasing memo growth that
  naive cross-cell sharing would cause.

Everything here is gated on bitwise-identical output (tests/golden and
``tests/sim/test_arrays.py``); the ``REPRO_ARRAY_KERNELS`` environment
variable (default on; ``0``/``off`` disables, ``py`` forces the
pure-Python kernels) selects among the backends so every path stays
pinned.

Two exactness constraints shape the design:

* The relaxation walk is **order-sensitive**: ``bl_edges_visited`` is an
  observable quantity (the BL estimator charges it as submission
  overhead), and under a visit budget the *final bottom-levels* depend
  on LIFO visit order too.  The kernel therefore runs the walk
  sequentially over flat int buffers — the budget is checked once per
  popped node, exactly like the reference, which makes charging a
  node's whole edge row in one batch legal — rather than as a
  level-synchronous numpy sweep that would visit a different number of
  edges.  Fully vectorized numpy sweeps are used where order does not
  matter: :meth:`BottomLevelState.recompute` re-derives exact bottom
  levels from the CSR adjacency for validation.
* Two interchangeable walk backends exist: a compiled C loop
  (:mod:`repro.sim._ckernels`, used when a host compiler is available)
  over preallocated capacity-managed ``array('q')`` buffers, and a
  pure-Python loop over ``list`` buffers with per-node ``tuple``
  adjacency rows (profiled on CPython 3.11: ``list`` int reads beat
  ``array('q')``, which boxes on every read, and tuple rows beat
  slicing the CSR ``indices``).  Both produce identical integers; the
  native backend defers the per-task ``task.bottom_level`` mirror
  writes to one deduplicated pass after the walk, which is
  unobservable because every reader runs between submissions.
"""

from __future__ import annotations

import os
from array import array
from typing import NoReturn, Optional

from . import _ckernels

__all__ = [
    "kernels_enabled",
    "native_enabled",
    "BottomLevelState",
    "TransitionLog",
    "KernelArena",
]

#: Environment toggle for the array-kernel paths.  Read at *construction*
#: time by TaskGraph / EnergyAccountant, so a monkeypatched environment
#: affects every subsequently built system (the golden tests pin both
#: settings in one process this way).
ENV_TOGGLE = "REPRO_ARRAY_KERNELS"

_OFF_VALUES = ("0", "off", "false", "no")
_PY_VALUES = ("py", "python")

#: Histogram growth quantum for the Python backend (bottom levels rarely
#: exceed a few dozen).
_GROW = 64

#: Stand-in for "no budget": larger than any reachable edge count, so the
#: hot loop needs no ``is not None`` test.
_NO_BUDGET = 1 << 62

#: Initial capacities for the native backend's preallocated buffers.
_INIT_TASKS = 1024
_INIT_EDGES = 4096


def _env_value() -> str:
    return os.environ.get(ENV_TOGGLE, "1").strip().lower()


def kernels_enabled(override: Optional[bool] = None) -> bool:
    """Whether the flat-array kernels are active.

    ``override`` forces the answer (used by perf scenarios that must
    measure one specific path); otherwise ``REPRO_ARRAY_KERNELS``
    decides, defaulting to on.
    """
    if override is not None:
        return override
    return _env_value() not in _OFF_VALUES


def native_enabled() -> bool:
    """Whether the compiled kernel backend is active.

    Requires the kernels to be on, ``REPRO_ARRAY_KERNELS`` not set to
    ``py`` (the explicit pure-Python pin), and a loadable compiled
    library — no compiler means a silent, bit-identical fallback to the
    Python kernels.
    """
    v = _env_value()
    if v in _OFF_VALUES or v in _PY_VALUES:
        return False
    return _ckernels.load() is not None


class BottomLevelState:
    """Flat buffers for incremental bottom-level maintenance.

    Logical layout (all indexed by ``task_id``):

    ``bl``
        current bottom level;
    ``fin``
        1 iff the task reached ``FINISHED`` (the walk tests it without
        touching the Task object);
    ``counts``
        histogram of bottom levels over *unfinished* tasks — replaces
        the reference implementation's dict;
    ``indptr`` / ``indices``
        CSR predecessor adjacency built incrementally by
        :meth:`submit`: the predecessors of task ``t`` are
        ``indices[indptr[t]:indptr[t+1]]``.

    The native backend preallocates everything as capacity-doubling
    ``array('q')``/``array('b')`` buffers whose raw addresses are cached
    in a persistent params block between growths, so each
    :meth:`submit` is one C call with a single pointer argument; the
    Python backend uses ``list``/``bytearray`` with on-demand growth.
    ``stamp``/``touched`` (native only) carry the walk's first-touch
    dedup for the deferred ``task.bottom_level`` mirror writes.
    """

    __slots__ = (
        "native",
        "bl",
        "fin",
        "counts",
        "indptr",
        "indices",
        "max_bl",
        "max_bl_waiting",
        "_n",
        "_ne",
        "_cap",
        "_ecap",
        "stamp",
        "touched",
        "_state",
        "_params",
        "_a_params",
        "_fn",
    )

    def __init__(self, native: Optional[bool] = None) -> None:
        self.native = native_enabled() if native is None else native
        self.clear()

    def clear(self) -> None:
        """Reset to the empty graph (arena reuse between cells)."""
        self.max_bl = 0
        self.max_bl_waiting = 0
        self._n = 0
        self._ne = 0
        if self.native:
            cap, ecap = _INIT_TASKS, _INIT_EDGES
            self._cap = cap
            self._ecap = ecap
            self.bl = array("q", bytes(8 * cap))
            self.fin = array("b", bytes(cap))
            self.counts = array("q", bytes(8 * (cap + 2)))
            self.indptr = array("q", bytes(8 * (cap + 1)))
            self.indices = array("q", bytes(8 * ecap))
            self.stamp = array("q", bytes(8 * cap))
            self.touched = array("q", bytes(8 * cap))
            #: {max_bl, max_bl_waiting, epoch, n_touched, pending} — the
            #: scalar I/O block shared with the C kernel.
            self._state = array("q", [0, 0, 0, 0, 0])
            self._fn = _ckernels.load().bl_submit
            self._refresh_addrs()
        else:
            self._cap = 0
            self._ecap = 0
            self.bl = []
            self.fin = bytearray()
            self.counts = [0] * _GROW
            self.indptr = array("q", [0])
            self.indices = array("q")
            self.stamp = None
            self.touched = None
            self._state = None
            self._params = None
            self._a_params = 0
            self._fn = None

    def __len__(self) -> int:
        return self._n

    # ----------------------------------------------------- native plumbing
    def _refresh_addrs(self) -> None:
        # One persistent address block (see bl_submit's `bufs`): the per-
        # call ctypes marshalling collapses to a single pointer argument.
        self._params = array(
            "q",
            [
                self.bl.buffer_info()[0],
                self.fin.buffer_info()[0],
                self.counts.buffer_info()[0],
                self.indptr.buffer_info()[0],
                self.indices.buffer_info()[0],
                self.stamp.buffer_info()[0],
                self.touched.buffer_info()[0],
                self._state.buffer_info()[0],
            ],
        )
        self._a_params = self._params.buffer_info()[0]

    def _grow_tasks(self) -> None:
        cap = self._cap
        pad_q = array("q", bytes(8 * cap))
        self.bl.extend(pad_q)
        self.counts.extend(pad_q)
        self.indptr.extend(pad_q)
        self.stamp.extend(pad_q)
        self.touched.extend(pad_q)
        self.fin.extend(array("b", bytes(cap)))
        self._cap = cap * 2
        self._refresh_addrs()

    def _grow_edges(self, need: int) -> None:
        ecap = self._ecap
        while ecap < need:
            ecap *= 2
        self.indices.extend(array("q", bytes(8 * (ecap - self._ecap))))
        self._ecap = ecap
        self._refresh_addrs()

    # ---------------------------------------------------------- submission
    def submit(
        self,
        dep_ids: tuple[int, ...],
        pred_rows: list[tuple[int, ...]],
        tasks: list,
        budget: Optional[int],
        track: bool = True,
    ) -> tuple[int, int]:
        """Add a new leaf (BL 0) with its predecessor edges and relax.

        Returns ``(edges_visited, pending_preds)``.  The walk is a
        bitwise-faithful port of ``TaskGraph._relax_bottom_levels`` onto
        the flat buffers: same LIFO frontier, same duplicate-dependence
        handling (the initial frontier is built before any BL moves, and
        ``pending`` counts unfinished deps per *occurrence*), and the
        budget is checked once per popped node — which is what makes
        charging a node's whole edge row in one ``+= len(row)`` legal.
        ``track=False`` appends the row and counts pending but skips the
        walk entirely (0 edges charged).

        ``tasks[i].bottom_level`` is kept in sync for every relaxed node:
        the BL readers outside the graph (HPRQ priority, criticality
        estimators) take the Task object, not an id.  The native backend
        runs validation, CSR append, pending count and walk as *one* C
        call (per-call ctypes marshalling dominated the split form) and
        then mirrors once per distinct touched task; the Python backend
        writes in place during the walk.  Both orders are unobservable —
        no reader runs inside ``TaskGraph.submit``.

        On the python backend the caller must have validated ``dep_ids``
        (each in ``[0, len(self))``); the native kernel validates them
        itself, before any mutation, and raises the reference
        implementation's exact error.
        """
        if self.native:
            n = self._n
            if n >= self._cap:
                self._grow_tasks()
            nd = len(dep_ids)
            ne = self._ne
            if nd:
                if ne + nd > self._ecap:
                    self._grow_edges(ne + nd)
                try:
                    scratch = array("q", dep_ids)
                except OverflowError:
                    # A dep id outside int64 is by construction unknown;
                    # raise the reference error for it.
                    self._raise_bad_dep(dep_ids)
                a_deps = scratch.buffer_info()[0]
            else:
                a_deps = 0
            if track:
                c_budget = _NO_BUDGET if budget is None else budget
            else:
                c_budget = -1
            edges = self._fn(self._a_params, a_deps, nd, n, ne, c_budget)
            if edges < 0:
                if edges == -3:
                    self._raise_bad_dep(dep_ids)
                raise MemoryError("bl_submit: frontier stack allocation failed")
            self._n = n + 1
            self._ne = ne + nd
            st = self._state
            self.max_bl = st[0]
            self.max_bl_waiting = st[1]
            nt = st[3]
            if nt:
                bl = self.bl
                for pid in self.touched[:nt]:
                    tasks[pid].bottom_level = bl[pid]
            return edges, st[4]

        fin = self.fin
        pending = 0
        for d in dep_ids:
            if not fin[d]:
                pending += 1
        self.bl.append(0)
        self.fin.append(0)
        self.counts[0] += 1
        if dep_ids:
            self.indices.extend(dep_ids)
        self.indptr.append(len(self.indices))
        self._n += 1
        self._ne = len(self.indices)
        if not track:
            return 0, pending
        return self._relax_py(dep_ids, pred_rows, tasks, budget), pending

    def _raise_bad_dep(self, dep_ids: tuple[int, ...]) -> "NoReturn":
        """Raise the reference implementation's unknown-dependence error."""
        n = self._n
        for d in dep_ids:
            if not (0 <= d < n):
                raise ValueError(f"task {n} depends on unknown task {d}")
        raise AssertionError("kernel rejected deps the reference accepts")

    def _relax_py(
        self,
        dep_ids: tuple[int, ...],
        pred_rows: list[tuple[int, ...]],
        tasks: list,
        budget: Optional[int],
    ) -> int:
        """The pure-Python walk (see :meth:`submit` for the contract).

        Profiled on CPython 3.11: ``list`` BL reads beat ``array('q')``
        (which boxes on every read) and the caller's per-node ``tuple``
        adjacency rows beat slicing the CSR ``indices``.
        """
        bl = self.bl
        fin = self.fin
        counts = self.counts
        edges = len(dep_ids)
        frontier = [d for d in dep_ids if bl[d] < 1]
        if not frontier:
            return edges
        max_bl = self.max_bl
        max_bl_waiting = self.max_bl_waiting
        for d in frontier:
            if not fin[d]:
                counts[bl[d]] -= 1
                counts[1] += 1
                if max_bl_waiting < 1:
                    max_bl_waiting = 1
            bl[d] = 1
            tasks[d].bottom_level = 1
        cap = budget if budget is not None else _NO_BUDGET
        n_counts = len(counts)
        pop = frontier.pop
        push = frontier.append
        while frontier:
            if edges >= cap:
                break
            nid = pop()
            nbl = bl[nid]
            if nbl > max_bl:
                max_bl = nbl
            new_bl = nbl + 1
            if new_bl >= n_counts:
                counts.extend([0] * _GROW)
                n_counts = len(counts)
            row = pred_rows[nid]
            edges += len(row)
            for pid in row:
                pbl = bl[pid]
                if pbl < new_bl:
                    if not fin[pid]:
                        counts[pbl] -= 1
                        counts[new_bl] += 1
                        if new_bl > max_bl_waiting:
                            max_bl_waiting = new_bl
                    bl[pid] = new_bl
                    tasks[pid].bottom_level = new_bl
                    push(pid)
        self.max_bl = max_bl
        self.max_bl_waiting = max_bl_waiting
        return edges

    # ------------------------------------------------------------ progress
    def retire(self, task_id: int) -> None:
        """A tracked task finished: update histogram and the waiting max."""
        counts = self.counts
        counts[self.bl[task_id]] -= 1
        w = self.max_bl_waiting
        while w > 0 and not counts[w]:
            w -= 1
        self.max_bl_waiting = w
        if self.native:
            # The C walk reads max_bl_waiting back from the shared block.
            self._state[1] = w

    # ---------------------------------------------------------- batch view
    def bottom_levels(self):
        """Current bottom levels as a numpy int64 array (copy)."""
        import numpy as np

        if self.native:
            return np.asarray(self.bl[: self._n], dtype=np.int64)
        return np.asarray(self.bl, dtype=np.int64)

    def recompute(self):
        """Exact bottom levels from the CSR adjacency, as batched sweeps.

        Bellman-Ford-style relaxation over the full edge arrays:
        ``exact[pred] = max(exact[pred], exact[succ] + 1)`` for every
        edge at once (``np.maximum.at``), repeated until fixpoint — at
        most ``longest_path + 1`` sweeps.  Order-insensitive, so full
        vectorization is legal here (unlike the budgeted walk).  Used by
        validation to cross-check the incremental buffers.
        """
        import numpy as np

        n = self._n
        exact = np.zeros(n, dtype=np.int64)
        if not self._ne:
            return exact
        indptr = np.asarray(self.indptr[: n + 1], dtype=np.int64)
        preds = np.asarray(self.indices[: self._ne], dtype=np.int64)
        # Edge e (a predecessor reference) belongs to the task whose CSR
        # row contains it: succ_of_edge[indptr[t]:indptr[t+1]] == t.
        succ_of_edge = np.repeat(np.arange(n, dtype=np.int64), np.diff(indptr))
        while True:
            relaxed = exact.copy()
            np.maximum.at(relaxed, preds, exact[succ_of_edge] + 1)
            if np.array_equal(relaxed, exact):
                return exact
            exact = relaxed


class TransitionLog:
    """Append-only core-state transition log for batched energy sweeps.

    Four parallel flat buffers — timestamp, core id, resolved power
    draw, resolved breakdown-bucket index — appended by
    ``EnergyAccountant.set_state`` and drained in order by its replay
    sweep (compiled when available, Python otherwise).  Replaying in
    append order reproduces the exact float summation order of the
    eager per-edge accrual (global chronological interleaving across
    cores), so prefix flushes at sync points are bitwise-neutral.

    Power and bucket are resolved *at append time*: they are pure
    functions of the (interned) core state, so resolution order cannot
    change any value, and storing scalars keeps the log free of object
    references — nothing here can alias a recycled ``id()`` across
    cells of a multi-cell worker session.
    """

    __slots__ = ("t", "core", "power", "bidx")

    def __init__(self) -> None:
        self.t: array = array("d")
        self.core: array = array("q")
        self.power: array = array("d")
        self.bidx: array = array("q")

    def __len__(self) -> int:
        return len(self.t)

    def clear(self) -> None:
        self.t = array("d")
        self.core = array("q")
        self.power = array("d")
        self.bidx = array("q")

    def times(self):
        """Logged timestamps as a numpy float64 array (diagnostics)."""
        import numpy as np

        return np.asarray(self.t, dtype=np.float64)


class KernelArena:
    """Reusable kernel buffers + memos for multi-cell worker sessions.

    One arena lives per worker process (module global in
    :mod:`repro.harness.executor`); ``reset`` is called between cells.
    Two kinds of state with different lifetimes:

    * **buffers** (:class:`BottomLevelState`, :class:`TransitionLog`) —
      cleared on every reset; purely an allocation amortization;
    * **memos** (``power_memo``, ``machine_cache``) — *value-keyed*
      caches of pure functions of the machine configuration, scoped per
      machine fingerprint and cleared whenever the fingerprint changes.

    The scoping fixes the PR 2 memo-growth hazard: the per-instance
    memos (``EnergyAccountant._power_bucket``, ``Core._state_cache``)
    are keyed by ``id()`` and die with their cell, which is safe but
    repeats work every cell; naively sharing them across cells would
    both grow without bound and alias recycled ids.  The arena's shared
    layer is keyed by value (frozen dataclasses), so an id can never
    alias, and is dropped the moment a different machine shows up.
    """

    __slots__ = ("fingerprint", "power_memo", "machine_cache", "bl", "transitions", "cells")

    def __init__(self) -> None:
        self.fingerprint: Optional[str] = None
        #: CoreState (by value) -> (watts, bucket_index); see EnergyAccountant.
        self.power_memo: dict = {}
        #: machine fingerprint -> parsed MachineConfig (frozen, shareable).
        self.machine_cache: dict = {}
        self.bl = BottomLevelState()
        self.transitions = TransitionLog()
        #: Cells simulated on this arena (diagnostics).
        self.cells: int = 0

    def reset(self, fingerprint: Optional[str]) -> None:
        """Prepare for the next cell; clears memos on machine change."""
        if fingerprint != self.fingerprint:
            self.power_memo.clear()
            self.machine_cache.clear()
            self.fingerprint = fingerprint
        self.bl.clear()
        self.transitions.clear()
        self.cells += 1
