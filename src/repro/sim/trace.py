"""Execution trace records.

The trace is the simulator's observable output besides aggregate metrics:
task execution spans, DVFS reconfigurations, lock acquisitions, C-state
transitions.  The Section V-C reproduction (reconfiguration latency and lock
contention statistics) is computed entirely from these records.

Recording is cheap (append to lists) and can be disabled wholesale for the
large benchmark sweeps by constructing ``Trace(enabled=False)`` — counters
stay live either way because the harness always needs them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

__all__ = [
    "TaskSpan",
    "ReconfigRecord",
    "LockWaitRecord",
    "CStateRecord",
    "FreqChangeRecord",
    "Trace",
]


@dataclass(frozen=True)
class TaskSpan:
    """One task execution on one core, [start_ns, end_ns)."""

    task_id: int
    task_type: str
    core_id: int
    start_ns: float
    end_ns: float
    critical: bool
    accelerated_at_start: bool
    #: Owning tenant in open-loop scenarios; None in closed-loop runs (and
    #: omitted from the serialized form, keeping legacy traces byte-stable).
    tenant: Optional[int] = None

    @property
    def duration_ns(self) -> float:
        return self.end_ns - self.start_ns


@dataclass(frozen=True)
class ReconfigRecord:
    """One complete reconfiguration operation (may cover 1–2 transitions).

    ``latency_ns`` is end-to-end as observed by the initiator — for the
    software path it includes lock wait, kernel crossings and hardware
    transitions; for the RSU it is the ISA-op plus decision latency only
    (the voltage ramp is asynchronous).
    """

    initiator_core: int
    start_ns: float
    end_ns: float
    accelerated_core: Optional[int]
    decelerated_core: Optional[int]
    mechanism: str  # "software" | "rsu" | "turbomode"
    lock_wait_ns: float = 0.0

    @property
    def latency_ns(self) -> float:
        return self.end_ns - self.start_ns


@dataclass(frozen=True)
class LockWaitRecord:
    """One acquisition of a simulated lock."""

    lock_name: str
    core_id: int
    request_ns: float
    grant_ns: float
    release_ns: float

    @property
    def wait_ns(self) -> float:
        return self.grant_ns - self.request_ns

    @property
    def hold_ns(self) -> float:
        return self.release_ns - self.grant_ns


@dataclass(frozen=True)
class CStateRecord:
    """A core changing ACPI power state."""

    core_id: int
    time_ns: float
    old_state: str
    new_state: str


@dataclass(frozen=True)
class FreqChangeRecord:
    """A completed DVFS transition on one core."""

    core_id: int
    time_ns: float
    old_level: str
    new_level: str


@dataclass
class Trace:
    """Collects execution records and running counters."""

    enabled: bool = True
    task_spans: list[TaskSpan] = field(default_factory=list)
    reconfigs: list[ReconfigRecord] = field(default_factory=list)
    lock_waits: list[LockWaitRecord] = field(default_factory=list)
    cstate_changes: list[CStateRecord] = field(default_factory=list)
    freq_changes: list[FreqChangeRecord] = field(default_factory=list)
    # Counters are always maintained, even with enabled=False.
    tasks_executed: int = 0
    reconfig_count: int = 0
    freq_transition_count: int = 0
    total_reconfig_latency_ns: float = 0.0
    total_lock_wait_ns: float = 0.0
    max_lock_wait_ns: float = 0.0

    # ----------------------------------------------------------- recording
    def record_task(self, span: TaskSpan) -> None:
        self.tasks_executed += 1
        if self.enabled:
            self.task_spans.append(span)

    def record_reconfig(self, rec: ReconfigRecord) -> None:
        self.reconfig_count += 1
        self.total_reconfig_latency_ns += rec.latency_ns
        if self.enabled:
            self.reconfigs.append(rec)

    def record_lock_wait(self, rec: LockWaitRecord) -> None:
        self.total_lock_wait_ns += rec.wait_ns
        if rec.wait_ns > self.max_lock_wait_ns:
            self.max_lock_wait_ns = rec.wait_ns
        if self.enabled:
            self.lock_waits.append(rec)

    def record_cstate(self, rec: CStateRecord) -> None:
        if self.enabled:
            self.cstate_changes.append(rec)

    def record_freq_change(self, rec: FreqChangeRecord) -> None:
        self.freq_transition_count += 1
        if self.enabled:
            self.freq_changes.append(rec)

    # ---------------------------------------------------------- statistics
    @property
    def avg_reconfig_latency_ns(self) -> float:
        """Average end-to-end reconfiguration latency (Section V-C)."""
        if self.reconfig_count == 0:
            return 0.0
        return self.total_reconfig_latency_ns / self.reconfig_count

    def reconfig_overhead_fraction(self, total_core_time_ns: float) -> float:
        """Reconfiguration time as a fraction of aggregate core time.

        The paper reports 0.03 %–3.49 % average overhead across the six
        applications (Section V-C).
        """
        if total_core_time_ns <= 0:
            return 0.0
        return self.total_reconfig_latency_ns / total_core_time_ns
