"""Simulated locks with FIFO waiters and contention accounting.

The software CATA implementation serializes every reconfiguration behind a
single runtime-level mutex (paper Section III-A: concurrent updates could
transiently exceed the power budget).  Section V-C reports that under bursty
reconfiguration — e.g. barrier releases in Blackscholes, Fluidanimate and
Bodytrack — the *maximum* lock acquisition time reaches 4.8–15 ms even though
the average reconfiguration latency is only 11–65 µs.  Those statistics come
straight out of this module's records.

A waiter spins on its core (busy C0, low activity) until granted; the energy
cost of spinning is therefore accounted automatically through the core model.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Optional

from .engine import Simulator
from .trace import LockWaitRecord, Trace

__all__ = ["SimLock", "LockStats"]


@dataclass
class LockStats:
    """Aggregate contention statistics for one lock."""

    acquisitions: int = 0
    contended_acquisitions: int = 0
    total_wait_ns: float = 0.0
    max_wait_ns: float = 0.0
    total_hold_ns: float = 0.0

    @property
    def avg_wait_ns(self) -> float:
        return self.total_wait_ns / self.acquisitions if self.acquisitions else 0.0


@dataclass(slots=True)
class _Waiter:
    core_id: int
    request_ns: float
    on_granted: Callable[[], None]


class SimLock:
    """A mutex inside the simulation.  Grant order is strict FIFO.

    Usage::

        lock.acquire(core_id, lambda: ...critical section...; lock.release())

    The grant callback runs at the simulation instant the lock is obtained.
    The holder *must* eventually call :meth:`release`.
    """

    def __init__(self, sim: Simulator, name: str, trace: Optional[Trace] = None) -> None:
        self._sim = sim
        self.name = name
        self._trace = trace
        self._holder: Optional[int] = None
        self._grant_ns: float = 0.0
        self._request_ns: float = 0.0
        # FIFO waiter queue.  A deque, not a list: the hand-off in
        # release() pops from the *front*, and list.pop(0) is O(n) — under
        # the bursty reconfiguration storms of Section V-C dozens of cores
        # pile up here at barrier releases.
        self._queue: deque[_Waiter] = deque()
        self.stats = LockStats()

    # ------------------------------------------------------------- queries
    @property
    def held(self) -> bool:
        return self._holder is not None

    @property
    def holder(self) -> Optional[int]:
        return self._holder

    @property
    def queue_length(self) -> int:
        return len(self._queue)

    # ----------------------------------------------------------- operation
    def acquire(self, core_id: int, on_granted: Callable[[], None]) -> None:
        """Request the lock for ``core_id``; ``on_granted`` fires when owned."""
        if self._holder == core_id:
            raise RuntimeError(f"core {core_id} would deadlock re-acquiring {self.name}")
        san = self._sim.sanitizer
        if san is not None:
            san.on_lock_acquire(self.name, core_id)
        if self._holder is None and not self._queue:
            self._grant(core_id, self._sim.now, on_granted)
        else:
            self.stats.contended_acquisitions += 1
            self._queue.append(
                _Waiter(core_id=core_id, request_ns=self._sim.now, on_granted=on_granted)
            )

    def _grant(self, core_id: int, request_ns: float, on_granted: Callable[[], None]) -> None:
        san = self._sim.sanitizer
        if san is not None:
            san.on_lock_grant(self.name, core_id)
        self._holder = core_id
        self._request_ns = request_ns
        self._grant_ns = self._sim.now
        wait = self._grant_ns - request_ns
        self.stats.acquisitions += 1
        self.stats.total_wait_ns += wait
        if wait > self.stats.max_wait_ns:
            self.stats.max_wait_ns = wait
        on_granted()

    def release(self) -> None:
        """Release the lock and hand it to the next FIFO waiter (if any)."""
        san = self._sim.sanitizer
        if san is not None:
            san.on_lock_release(self.name, self._holder)
        if self._holder is None:
            raise RuntimeError(f"release of unheld lock {self.name}")
        hold = self._sim.now - self._grant_ns
        self.stats.total_hold_ns += hold
        if self._trace is not None:
            self._trace.record_lock_wait(
                LockWaitRecord(
                    lock_name=self.name,
                    core_id=self._holder,
                    request_ns=self._request_ns,
                    grant_ns=self._grant_ns,
                    release_ns=self._sim.now,
                )
            )
        self._holder = None
        if self._queue:
            # Hand over synchronously: a deferred grant would leave the lock
            # momentarily unheld and a same-instant acquire() could jump the
            # queue (two holders).  Recursion depth is bounded by the queue
            # length because contended critical sections complete in later
            # events; only immediately-aborting waiters chain on this stack.
            waiter = self._queue.popleft()
            self._grant(waiter.core_id, waiter.request_ns, waiter.on_granted)
