"""Deterministic discrete-event simulation engine.

The engine is the clock of the whole reproduction: every other component
(cores, DVFS controller, runtime workers, reconfiguration managers) advances
time exclusively by scheduling events here.

Design notes
------------
* Time is a float number of **nanoseconds** since simulation start.  All
  durations in the code base are expressed in nanoseconds; helper constants
  (:data:`US`, :data:`MS`) make call sites legible.
* Events at equal timestamps fire in scheduling order.  The heap entries are
  ``(time, seq, event)`` where ``seq`` is a monotonically increasing integer,
  which makes execution fully deterministic — a requirement called out in
  DESIGN.md (identical seeds must produce identical traces).
* Events are cancellable.  Cancellation is lazy: the entry stays in the heap
  and is skipped when popped.  This is the standard idiom for DES written on
  top of :mod:`heapq` and keeps ``cancel`` O(1).
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

__all__ = ["Event", "Simulator", "SimulationError", "NS", "US", "MS", "SEC"]

#: One nanosecond, the base time unit of the simulator.
NS: float = 1.0
#: One microsecond in nanoseconds.
US: float = 1_000.0
#: One millisecond in nanoseconds.
MS: float = 1_000_000.0
#: One second in nanoseconds.
SEC: float = 1_000_000_000.0


class SimulationError(RuntimeError):
    """Raised for violations of engine invariants (e.g. scheduling in the past)."""


@dataclass(order=False)
class Event:
    """A scheduled callback.

    Instances are returned by :meth:`Simulator.schedule` / :meth:`Simulator.at`
    and can be cancelled before they fire.  ``payload`` is free-form metadata
    used only for debugging and tracing.
    """

    time: float
    seq: int
    callback: Callable[[], None]
    payload: Any = None
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        """Prevent this event from firing.  Idempotent."""
        self.cancelled = True

    @property
    def pending(self) -> bool:
        """True while the event has neither fired nor been cancelled."""
        return not self.cancelled and not getattr(self, "_fired", False)


class Simulator:
    """Priority-queue discrete-event simulator.

    Example
    -------
    >>> sim = Simulator()
    >>> out = []
    >>> _ = sim.schedule(5.0, lambda: out.append(sim.now))
    >>> sim.run()
    >>> out
    [5.0]
    """

    def __init__(self) -> None:
        self._now: float = 0.0
        self._heap: list[tuple[float, int, Event]] = []
        self._seq = itertools.count()
        self._events_fired = 0
        self._running = False

    # ------------------------------------------------------------------ time
    @property
    def now(self) -> float:
        """Current simulation time in nanoseconds."""
        return self._now

    @property
    def events_fired(self) -> int:
        """Number of events executed so far (diagnostics)."""
        return self._events_fired

    @property
    def pending_events(self) -> int:
        """Number of events still in the heap (including cancelled ones)."""
        return len(self._heap)

    # ------------------------------------------------------------ scheduling
    def schedule(
        self, delay: float, callback: Callable[[], None], payload: Any = None
    ) -> Event:
        """Schedule ``callback`` to run ``delay`` ns from now.

        ``delay`` must be non-negative; a zero delay fires after all events
        already scheduled for the current instant.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule event in the past (delay={delay})")
        return self.at(self._now + delay, callback, payload)

    def at(self, time: float, callback: Callable[[], None], payload: Any = None) -> Event:
        """Schedule ``callback`` at absolute simulation time ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule event at t={time} before now={self._now}"
            )
        ev = Event(time=time, seq=next(self._seq), callback=callback, payload=payload)
        heapq.heappush(self._heap, (ev.time, ev.seq, ev))
        return ev

    # --------------------------------------------------------------- running
    def step(self) -> bool:
        """Fire the single next pending event.

        Returns ``False`` when the heap holds no fireable event.
        """
        while self._heap:
            time, _seq, ev = heapq.heappop(self._heap)
            if ev.cancelled:
                continue
            self._now = time
            ev._fired = True  # type: ignore[attr-defined]
            self._events_fired += 1
            ev.callback()
            return True
        return False

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Run until the event heap drains, ``until`` is reached, or
        ``max_events`` events have fired.

        ``until`` is an inclusive upper bound: events scheduled exactly at
        ``until`` still fire; the clock is left at ``until`` if it is reached.
        ``max_events`` guards against runaway schedules in tests.
        """
        if self._running:
            raise SimulationError("Simulator.run() is not reentrant")
        self._running = True
        fired = 0
        try:
            while self._heap:
                time, _seq, ev = self._heap[0]
                if ev.cancelled:
                    heapq.heappop(self._heap)
                    continue
                if until is not None and time > until:
                    self._now = until
                    return
                if max_events is not None and fired >= max_events:
                    raise SimulationError(
                        f"exceeded max_events={max_events}; runaway event loop?"
                    )
                heapq.heappop(self._heap)
                self._now = time
                ev._fired = True  # type: ignore[attr-defined]
                self._events_fired += 1
                fired += 1
                ev.callback()
            if until is not None and until > self._now:
                self._now = until
        finally:
            self._running = False
