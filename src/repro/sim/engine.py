"""Deterministic discrete-event simulation engine.

The engine is the clock of the whole reproduction: every other component
(cores, DVFS controller, runtime workers, reconfiguration managers) advances
time exclusively by scheduling events here.

Design notes
------------
* Time is a float number of **nanoseconds** since simulation start.  All
  durations in the code base are expressed in nanoseconds; helper constants
  (:data:`US`, :data:`MS`) make call sites legible.
* Events at equal timestamps fire in scheduling order.  The heap entries are
  ``(time, seq, event)`` where ``seq`` is a monotonically increasing integer,
  which makes execution fully deterministic — a requirement called out in
  DESIGN.md (identical seeds must produce identical traces).
* Events are cancellable.  Cancellation is lazy: the entry stays in the heap
  and is skipped when popped.  This is the standard idiom for DES written on
  top of :mod:`heapq` and keeps ``cancel`` O(1).  To stop workloads that
  cancel en masse (DVFS ramp restarts, work-steal backoff timers) from
  scanning dead entries forever, the engine *compacts* the heap once
  cancelled entries outnumber live ones: the surviving ``(time, seq, event)``
  entries are re-heapified, which preserves the exact pop order because the
  ``(time, seq)`` prefix is a total order.
* :class:`Event` is a ``__slots__`` class with an explicit three-valued
  state (pending / fired / cancelled), not a dataclass — event allocation
  and the per-pop state test are the two hottest operations in the whole
  reproduction (this module is executed once per simulated event across the
  entire figure grid; see ``docs/performance.md``).
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Optional

__all__ = ["Event", "Simulator", "SimulationError", "NS", "US", "MS", "SEC"]

#: One nanosecond, the base time unit of the simulator.
NS: float = 1.0
#: One microsecond in nanoseconds.
US: float = 1_000.0
#: One millisecond in nanoseconds.
MS: float = 1_000_000.0
#: One second in nanoseconds.
SEC: float = 1_000_000_000.0

#: Event lifecycle states (module-level ints: fastest possible state test).
_PENDING = 0
_FIRED = 1
_CANCELLED = 2

#: Compaction threshold: never compact below this many dead entries (the
#: rebuild is O(heap), so tiny heaps are cheaper to scan lazily).
_COMPACT_MIN_DEAD = 64


class SimulationError(RuntimeError):
    """Raised for violations of engine invariants (e.g. scheduling in the past)."""


class Event:
    """A scheduled callback.

    Instances are returned by :meth:`Simulator.schedule` / :meth:`Simulator.at`
    and can be cancelled before they fire.  ``payload`` is free-form metadata
    used only for debugging and tracing.

    The lifecycle state is explicit — pending, fired or cancelled — so
    :attr:`pending` is correct at every point of the lifecycle (before
    scheduling resolution, after firing, after cancellation).
    """

    __slots__ = ("time", "seq", "callback", "payload", "_state", "_sim")

    def __init__(
        self,
        time: float,
        seq: int,
        callback: Callable[[], None],
        payload: Any = None,
        sim: "Optional[Simulator]" = None,
    ) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.payload = payload
        self._state = _PENDING
        self._sim = sim

    def cancel(self) -> None:
        """Prevent this event from firing.  Idempotent; a no-op once fired."""
        if self._state == _PENDING:
            self._state = _CANCELLED
            sim = self._sim
            if sim is not None:
                san = sim.sanitizer
                if san is not None:
                    san.on_event_cancel(self)
                sim._note_cancelled()

    @property
    def cancelled(self) -> bool:
        """True once :meth:`cancel` was called before the event fired."""
        return self._state == _CANCELLED

    @property
    def fired(self) -> bool:
        """True once the callback has run."""
        return self._state == _FIRED

    @property
    def pending(self) -> bool:
        """True while the event has neither fired nor been cancelled."""
        return self._state == _PENDING

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = ("pending", "fired", "cancelled")[self._state]
        return f"Event(t={self.time}, seq={self.seq}, {state})"


class Simulator:
    """Priority-queue discrete-event simulator.

    Example
    -------
    >>> sim = Simulator()
    >>> out = []
    >>> _ = sim.schedule(5.0, lambda: out.append(sim.now))
    >>> sim.run()
    >>> out
    [5.0]
    """

    def __init__(self) -> None:
        self._now: float = 0.0
        self._heap: list[tuple[float, int, Event]] = []
        self._next_seq: int = 0
        self._events_fired = 0
        self._running = False
        self._stop_requested = False
        #: Cancelled events still sitting in the heap (compaction trigger).
        self._dead = 0
        #: Optional invariant checker (``--sanitize``); ``None`` keeps every
        #: instrumented site on its zero-overhead fast path.
        self.sanitizer: Optional[Any] = None

    # ------------------------------------------------------------------ time
    @property
    def now(self) -> float:
        """Current simulation time in nanoseconds."""
        return self._now

    @property
    def events_fired(self) -> int:
        """Number of events executed so far (diagnostics)."""
        return self._events_fired

    @property
    def pending_events(self) -> int:
        """Number of events still in the heap (including cancelled ones)."""
        return len(self._heap)

    @property
    def cancelled_in_heap(self) -> int:
        """Cancelled-but-not-yet-reclaimed heap entries (diagnostics)."""
        return self._dead

    # ------------------------------------------------------------ scheduling
    def schedule(
        self, delay: float, callback: Callable[[], None], payload: Any = None
    ) -> Event:
        """Schedule ``callback`` to run ``delay`` ns from now.

        ``delay`` must be non-negative; a zero delay fires after all events
        already scheduled for the current instant.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule event in the past (delay={delay})")
        return self.at(self._now + delay, callback, payload)

    def at(self, time: float, callback: Callable[[], None], payload: Any = None) -> Event:
        """Schedule ``callback`` at absolute simulation time ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule event at t={time} before now={self._now}"
            )
        seq = self._next_seq
        self._next_seq = seq + 1
        ev = Event(time, seq, callback, payload, self)
        heapq.heappush(self._heap, (time, seq, ev))
        return ev

    # ------------------------------------------------------------ compaction
    def _note_cancelled(self) -> None:
        """Bookkeeping hook called by :meth:`Event.cancel`."""
        self._dead += 1
        if self._dead >= _COMPACT_MIN_DEAD and self._dead * 2 >= len(self._heap):
            self.compact()

    def compact(self) -> None:
        """Drop cancelled entries and re-heapify.

        Pop order is unchanged: entries are totally ordered by their
        ``(time, seq)`` prefix, and heapify of any subset reproduces that
        order.  Runs automatically when at least half the heap is dead.
        """
        # In-place: run()/step() hold a local reference to this list while
        # they drain it, and cancellations (hence compactions) happen inside
        # event callbacks.
        self._heap[:] = [entry for entry in self._heap if entry[2]._state == _PENDING]
        heapq.heapify(self._heap)
        self._dead = 0

    # --------------------------------------------------------------- running
    def request_stop(self) -> None:
        """Make the innermost :meth:`run` return before firing another event.

        Used by drivers that detect completion inside an event callback
        (e.g. the runtime system firing its last task).  No-op outside
        :meth:`run`; the flag is cleared when :meth:`run` is entered.
        """
        self._stop_requested = True

    def step(self) -> bool:
        """Fire the single next pending event.

        Returns ``False`` when the heap holds no fireable event.
        """
        heap = self._heap
        pop = heapq.heappop
        san = self.sanitizer
        while heap:
            time, _seq, ev = pop(heap)
            if ev._state:  # not _PENDING — only cancelled entries linger in the heap
                self._dead -= 1
                if san is not None:
                    san.on_dead_entry(ev)
                continue
            self._now = time
            if san is not None:
                san.on_event_fire(time, ev)
            ev._state = _FIRED
            self._events_fired += 1
            ev.callback()
            return True
        return False

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Run until the event heap drains, ``until`` is reached,
        ``max_events`` events have fired, or :meth:`request_stop` is called.

        ``until`` is an inclusive upper bound: events scheduled exactly at
        ``until`` still fire; the clock is left at ``until`` if it is reached.
        ``max_events`` guards against runaway schedules in tests.
        """
        if self._running:
            raise SimulationError("Simulator.run() is not reentrant")
        self._running = True
        self._stop_requested = False
        heap = self._heap
        pop = heapq.heappop
        fired = 0
        try:
            if until is None and max_events is None:
                san = self.sanitizer
                if san is not None:
                    # Sanitized drain loop: same pop discipline, plus the
                    # invariant hooks on every fired/reclaimed entry.
                    while heap:
                        entry = pop(heap)
                        ev = entry[2]
                        if ev._state:
                            self._dead -= 1
                            san.on_dead_entry(ev)
                            continue
                        self._now = entry[0]
                        san.on_event_fire(entry[0], ev)
                        ev._state = _FIRED
                        self._events_fired += 1
                        ev.callback()
                        if self._stop_requested:
                            return
                    return
                # Hot path: the unbounded drain loop used by full simulations.
                while heap:
                    entry = pop(heap)
                    ev = entry[2]
                    if ev._state:
                        self._dead -= 1
                        continue
                    self._now = entry[0]
                    ev._state = _FIRED
                    self._events_fired += 1
                    ev.callback()
                    if self._stop_requested:
                        return
                return
            san = self.sanitizer
            while heap:
                time, _seq, ev = heap[0]
                if ev._state:
                    pop(heap)
                    self._dead -= 1
                    if san is not None:
                        san.on_dead_entry(ev)
                    continue
                if until is not None and time > until:
                    self._now = until
                    return
                if max_events is not None and fired >= max_events:
                    raise SimulationError(
                        f"exceeded max_events={max_events}; runaway event loop?"
                    )
                pop(heap)
                self._now = time
                if san is not None:
                    san.on_event_fire(time, ev)
                ev._state = _FIRED
                self._events_fired += 1
                fired += 1
                ev.callback()
                if self._stop_requested:
                    return
            if until is not None and until > self._now:
                self._now = until
        finally:
            self._running = False
