"""Cache-hierarchy latency blend.

Computes the average memory-access latency (in nanoseconds of *wall time*)
for a task given its miss profile, using the Table I latencies:

* L1 hit: 2 cycles (core clock — scales with the core's frequency, so the
  blend reports it separately),
* L2 hit: 15 cycles (uncore clock) plus NoC traversal to the NUCA bank,
* L2 miss: 300 cycles to memory.

The model is a standard additive AMAT decomposition.  It exists to let
workload generators express memory behaviour as miss rates per kilo-
instruction — the numbers PARSEC characterization papers publish — instead
of raw nanoseconds.  The uncore runs at a fixed 1 GHz reference clock, so
L2/memory time is frequency-invariant, which is exactly what makes
memory-bound tasks insensitive to acceleration in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass

from .config import MachineConfig
from .noc import hop_latency_cycles, mean_pairwise_distance

__all__ = ["MemoryProfile", "amat_split"]

#: Uncore reference clock used to turn uncore cycles into nanoseconds.
UNCORE_GHZ = 1.0


@dataclass(frozen=True)
class MemoryProfile:
    """Per-task memory behaviour expressed in architecture-neutral terms."""

    #: L1D misses per kilo-instruction.
    l1_mpki: float
    #: L2 misses per kilo-instruction (must not exceed l1_mpki).
    l2_mpki: float
    #: Fraction of instructions that access memory (loads + stores).
    mem_ratio: float = 0.3

    def __post_init__(self) -> None:
        if self.l1_mpki < 0 or self.l2_mpki < 0:
            raise ValueError("MPKI values must be non-negative")
        if self.l2_mpki > self.l1_mpki:
            raise ValueError("L2 MPKI cannot exceed L1 MPKI")
        if not (0.0 < self.mem_ratio <= 1.0):
            raise ValueError("mem_ratio must be in (0, 1]")


def amat_split(
    instructions: float, profile: MemoryProfile, machine: MachineConfig
) -> tuple[float, float]:
    """Split a task's work into (cpu_cycles, mem_ns).

    Returns
    -------
    cpu_cycles:
        Core cycles that scale with frequency: one cycle per instruction
        (the 4-wide OoO core is assumed to hide intra-L1 latency, so IPC≈1
        for compute) plus L1-hit time for memory instructions.
    mem_ns:
        Frequency-invariant wall time: time spent in the L2/NoC/memory
        beyond the L1, at the uncore clock.
    """
    if instructions < 0:
        raise ValueError("instructions must be non-negative")
    uarch = machine.uarch
    # Frequency-scaling portion: execution + L1 hits.
    l1_accesses = instructions * profile.mem_ratio
    cpu_cycles = instructions + l1_accesses * (uarch.l1d.hit_cycles - 1)
    # Frequency-invariant portion: beyond-L1 latency at the uncore clock.
    l1_misses = instructions * profile.l1_mpki / 1000.0
    l2_misses = instructions * profile.l2_mpki / 1000.0
    l2_hits = max(0.0, l1_misses - l2_misses)
    noc_cycles = hop_latency_cycles(mean_pairwise_distance(machine.noc), machine.noc)
    l2_hit_cycles = machine.l2_hit_cycles + 2 * noc_cycles
    mem_uncore_cycles = l2_hits * l2_hit_cycles + l2_misses * machine.l2_miss_cycles
    mem_ns = mem_uncore_cycles / UNCORE_GHZ
    return cpu_cycles, mem_ns
