"""Per-core execution model.

A :class:`Core` runs one piece of :class:`ExecutableWork` at a time.  Work is
split into frequency-scaling CPU cycles ``W`` and frequency-invariant memory
time ``M`` (ns), uniformly interleaved, so wall time per unit of progress at
frequency ``f`` GHz is ``W/f + M``.  Mid-execution frequency changes re-solve
the remaining time from recorded progress — this is precisely the mechanism
that lets CATA accelerate an *already running* critical task and thereby fix
the static-binding problem of CATS (paper Section II-C).

Work items may additionally *block* partway through (a kernel service: I/O,
a contended page-fault lock — paper Section V-D): the core halts (C1) for the
blocked interval and resumes afterwards.  TurboMode observes those halts; the
CATA managers do not, exactly as the paper describes.

The core also runs *runtime overhead* (scheduler code, reconfiguration code)
via :meth:`run_overhead`, during which it is busy but makes no task progress.

All power-relevant attribute changes funnel through :meth:`_sync_energy`, so
the :class:`~repro.sim.energy.EnergyAccountant` sees an exact piecewise-
constant power signal.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Protocol, runtime_checkable

from .config import DVFSLevel, MachineConfig
from .dvfs import DVFSController
from .energy import EnergyAccountant
from .engine import Event, Simulator
from .power import CoreState
from .trace import CStateRecord, Trace

__all__ = ["ExecutableWork", "Core", "CoreError"]


class CoreError(RuntimeError):
    """Raised on misuse of the core execution API."""


@runtime_checkable
class ExecutableWork(Protocol):
    """What the core needs to know about a task to execute it.

    Defined as a protocol so :mod:`repro.sim` does not depend on
    :mod:`repro.runtime` (strict bottom-up layering).
    """

    cpu_cycles: float
    mem_ns: float
    activity: float
    block_at: Optional[float]
    block_ns: float


@dataclass(slots=True)
class _Execution:
    work: ExecutableWork
    on_complete: Callable[[], None]
    on_block: Optional[Callable[[], None]]
    on_resume: Optional[Callable[[], None]]
    progress: float = 0.0
    last_update_ns: float = 0.0
    completion_event: Optional[Event] = None
    blocked: bool = False
    block_done: bool = False
    #: Single-entry memo of the wall-ns-per-progress denominator, keyed by
    #: frequency.  DVFS re-evaluation recomputes remaining time repeatedly
    #: at the same operating point; the float pipeline (divide + add) only
    #: needs to run once per (work, frequency).
    denom_freq_ghz: float = -1.0
    denom_ns: float = 0.0


class Core:
    """One simulated core: DVFS level, C-state, and work execution."""

    def __init__(
        self,
        core_id: int,
        sim: Simulator,
        machine: MachineConfig,
        dvfs: DVFSController,
        energy: EnergyAccountant,
        trace: Trace,
    ) -> None:
        self.core_id = core_id
        self._sim = sim
        self._machine = machine
        self._dvfs = dvfs
        self._energy = energy
        self._trace = trace
        self._cstate = "C0"
        self._busy = False
        self._activity = 0.0
        self._exec: Optional[_Execution] = None
        self._overhead_event: Optional[Event] = None
        self._overhead_done: Optional[Callable[[], None]] = None
        # The operating point is cached here and refreshed in
        # on_level_changed().  This relies on the existing wiring contract:
        # every completed DVFS transition is delivered to the core through
        # on_level_changed (RuntimeSystem registers the listener), which is
        # already required for correctness — progress re-solving would use
        # the wrong rate otherwise.
        self._level: DVFSLevel = dvfs.level_of(core_id)
        #: Interned CoreState per (level, cstate, activity, busy): cores
        #: cycle between a handful of states, and constructing + validating
        #: a fresh frozen dataclass per edge dominated _sync_energy.
        self._state_cache: dict[tuple, CoreState] = {}
        self._sync_energy()

    # ------------------------------------------------------------- queries
    @property
    def level(self) -> DVFSLevel:
        return self._level

    @property
    def cstate(self) -> str:
        return self._cstate

    @property
    def busy(self) -> bool:
        """True while executing a task or runtime overhead."""
        return self._busy

    @property
    def executing_task(self) -> bool:
        return self._exec is not None

    @property
    def blocked(self) -> bool:
        return self._exec is not None and self._exec.blocked

    @property
    def current_work(self) -> Optional[ExecutableWork]:
        return self._exec.work if self._exec is not None else None

    # ------------------------------------------------------ state plumbing
    def _sync_energy(self) -> None:
        # id(level) rather than the level itself: DVFSLevel is a frozen
        # dataclass whose generated __hash__ walks every field — far too
        # slow for this call rate.  The cached CoreState value keeps the
        # level object alive, so its id cannot be recycled while the entry
        # exists.
        key = (id(self._level), self._cstate, self._activity, self._busy)
        state = self._state_cache.get(key)
        if state is None:
            state = CoreState(
                level=self._level,
                cstate=self._cstate,
                activity=self._activity,
                busy=self._busy,
            )
            self._state_cache[key] = state
        self._energy.set_state(self.core_id, state)

    def set_cstate(self, new_state: str) -> None:
        """Change ACPI C-state; used by the C-state controller and blocking."""
        if new_state == self._cstate:
            return
        self._trace.record_cstate(
            CStateRecord(
                core_id=self.core_id,
                time_ns=self._sim.now,
                old_state=self._cstate,
                new_state=new_state,
            )
        )
        self._cstate = new_state
        self._sync_energy()

    def on_level_changed(self, old_level: Optional[DVFSLevel] = None) -> None:
        """DVFS transition completed; re-solve any in-flight execution.

        Progress made before this instant accrued at the *old* operating
        point, so the catch-up advance must use the old rate.
        """
        self._level = self._dvfs.level_of(self.core_id)
        if self._exec is not None and not self._exec.blocked:
            self._advance_progress(level=old_level)
            self._reschedule_completion()
        self._sync_energy()

    # ------------------------------------------------------ task execution
    def _rate_denominator_ns(
        self, work: ExecutableWork, level: Optional[DVFSLevel] = None
    ) -> float:
        """Wall ns per unit progress at the given (default: current) level."""
        freq = (level if level is not None else self._level).freq_ghz
        ex = self._exec
        if ex is not None and ex.work is work:
            if ex.denom_freq_ghz == freq:
                return ex.denom_ns
            denom = work.cpu_cycles / freq + work.mem_ns
            ex.denom_freq_ghz = freq
            ex.denom_ns = denom
            return denom
        return work.cpu_cycles / freq + work.mem_ns

    def remaining_ns(self) -> float:
        """Wall time to finish the current work at the current frequency."""
        if self._exec is None:
            raise CoreError("no work in flight")
        ex = self._exec
        return (1.0 - ex.progress) * self._rate_denominator_ns(ex.work)

    def _advance_progress(self, level: Optional[DVFSLevel] = None) -> None:
        ex = self._exec
        assert ex is not None
        elapsed = self._sim.now - ex.last_update_ns
        denom = self._rate_denominator_ns(ex.work, level)
        if denom > 0:
            ex.progress = min(1.0, ex.progress + elapsed / denom)
        else:
            ex.progress = 1.0
        ex.last_update_ns = self._sim.now

    def _next_stop_progress(self) -> float:
        """Progress point of the next interruption: block point or completion."""
        ex = self._exec
        assert ex is not None
        w = ex.work
        if w.block_at is not None and not ex.block_done and w.block_ns > 0:
            if ex.progress < w.block_at < 1.0:
                return w.block_at
        return 1.0

    def _reschedule_completion(self) -> None:
        ex = self._exec
        assert ex is not None
        if ex.completion_event is not None:
            ex.completion_event.cancel()
        stop = self._next_stop_progress()
        delta_ns = (stop - ex.progress) * self._rate_denominator_ns(ex.work)
        if stop >= 1.0:
            ex.completion_event = self._sim.schedule(delta_ns, self._finish_work)
        else:
            ex.completion_event = self._sim.schedule(delta_ns, self._enter_block)

    def begin_work(
        self,
        work: ExecutableWork,
        on_complete: Callable[[], None],
        on_block: Optional[Callable[[], None]] = None,
        on_resume: Optional[Callable[[], None]] = None,
    ) -> None:
        """Start executing ``work``; ``on_complete`` fires at the end.

        ``on_block``/``on_resume`` fire around a mid-task kernel block, after
        the C-state change has been applied (so listeners see C1 on block).
        """
        if self._exec is not None:
            raise CoreError(f"core {self.core_id} is already executing work")
        if self._overhead_event is not None:
            raise CoreError(f"core {self.core_id} is executing runtime overhead")
        if self._cstate != "C0":
            raise CoreError(
                f"core {self.core_id} must be woken (C0) before starting work, "
                f"is in {self._cstate}"
            )
        san = self._sim.sanitizer
        if san is not None:
            san.on_core_activity(self.core_id, self._sim.now)
        self._exec = _Execution(
            work=work,
            on_complete=on_complete,
            on_block=on_block,
            on_resume=on_resume,
            last_update_ns=self._sim.now,
        )
        self._busy = True
        self._activity = work.activity
        self._sync_energy()
        self._reschedule_completion()

    def _enter_block(self) -> None:
        ex = self._exec
        assert ex is not None
        self._advance_progress()
        ex.blocked = True
        ex.block_done = True
        ex.completion_event = None
        # The thread waits inside the kernel; the core halts.
        self.set_cstate("C1")
        if ex.on_block is not None:
            ex.on_block()
        self._sim.schedule(ex.work.block_ns, self._exit_block)

    def _exit_block(self) -> None:
        ex = self._exec
        if ex is None or not ex.blocked:
            return
        wake_ns = self._machine.overheads.c1_wake_ns
        self.set_cstate("C0")
        ex.blocked = False
        ex.last_update_ns = self._sim.now + wake_ns
        if ex.on_resume is not None:
            ex.on_resume()
        self._sim.schedule(wake_ns, self._reschedule_completion)

    def _finish_work(self) -> None:
        ex = self._exec
        assert ex is not None
        self._advance_progress()
        self._exec = None
        self._busy = False
        self._activity = 0.0
        self._sync_energy()
        ex.on_complete()

    # --------------------------------------------------- runtime overheads
    def run_overhead(
        self,
        duration_ns: float,
        on_done: Callable[[], None],
        activity: float = 0.6,
    ) -> None:
        """Execute runtime-system code for ``duration_ns`` then call back.

        The core is busy (C0) at the given activity for the duration; task
        execution cannot overlap (the worker model interleaves them).
        """
        if self._exec is not None:
            raise CoreError(f"core {self.core_id} is executing a task")
        if self._overhead_event is not None:
            raise CoreError(f"core {self.core_id} is already in overhead")
        if duration_ns < 0:
            raise CoreError("overhead duration must be non-negative")
        san = self._sim.sanitizer
        if san is not None:
            san.on_core_activity(self.core_id, self._sim.now)
        self._busy = True
        self._activity = activity
        self._sync_energy()
        self._overhead_done = on_done
        self._overhead_event = self._sim.schedule(duration_ns, self._finish_overhead)

    def _finish_overhead(self) -> None:
        on_done = self._overhead_done
        self._overhead_done = None
        self._overhead_event = None
        self._busy = False
        self._activity = 0.0
        self._sync_energy()
        on_done()

    def set_spinning(self, spinning: bool, activity: float = 0.3) -> None:
        """Mark the core as busy-waiting (e.g. on the reconfiguration lock)."""
        if self._exec is not None:
            raise CoreError("cannot spin while executing a task")
        self._busy = spinning
        self._activity = activity if spinning else 0.0
        self._sync_energy()

    # ----------------------------------------------------- fault injection
    def abort_work(self) -> None:
        """Kill the in-flight task execution without firing its callbacks.

        The completion (or block-entry) event is cancelled and all progress
        is discarded; the caller is responsible for re-enqueueing the task.
        A task blocked in-kernel is aborted in place (the pending unblock
        event finds no execution and becomes a no-op).
        """
        ex = self._exec
        if ex is None:
            return
        if ex.completion_event is not None:
            ex.completion_event.cancel()
        self._exec = None
        self._busy = False
        self._activity = 0.0
        if self._cstate != "C0":
            # Aborted while blocked in the kernel (C1): the block is moot.
            self.set_cstate("C0")
        self._sync_energy()

    def power_off(self) -> None:
        """Cancel any runtime overhead in flight and drop to zero activity.

        Used when the core fails: the overhead continuation (scheduler pick,
        RSU notification) must never fire on a dead core.  Task execution is
        aborted separately via :meth:`abort_work`.
        """
        if self._overhead_event is not None:
            self._overhead_event.cancel()
            self._overhead_event = None
            self._overhead_done = None
        self._busy = False
        self._activity = 0.0
        self._sync_energy()
