"""Per-core DVFS controller model.

Mirrors the gem5 DVFS extension the paper uses (Spiliopoulos et al. [31]):
each core has an independently settable operating point; a requested change
takes :attr:`~repro.sim.config.OverheadConfig.dvfs_transition_ns` (25 µs in
Table I) to take effect, during which the core keeps running at its old
point.  Re-requesting a level while a transition is in flight restarts the
ramp toward the new target (the controller serializes per core).

The controller knows nothing about budgets or criticality — those live in
:mod:`repro.core`.  It only executes transitions and notifies listeners.
"""

from __future__ import annotations

from typing import Callable, Optional

from .config import DVFSLevel, MachineConfig
from .engine import Event, Simulator
from .trace import FreqChangeRecord, Trace

__all__ = ["DVFSController"]

LevelListener = Callable[[int, DVFSLevel, DVFSLevel], None]


class DVFSController:
    """Tracks and changes the operating point of every core."""

    def __init__(
        self,
        sim: Simulator,
        machine: MachineConfig,
        trace: Trace,
        initial_levels: Optional[list[DVFSLevel]] = None,
    ) -> None:
        self._sim = sim
        self._machine = machine
        self._trace = trace
        self._transition_ns = machine.overheads.dvfs_transition_ns
        if initial_levels is None:
            initial_levels = [machine.slow] * machine.core_count
        if len(initial_levels) != machine.core_count:
            raise ValueError("initial_levels length must equal core_count")
        self._level: list[DVFSLevel] = list(initial_levels)
        self._pending_target: list[Optional[DVFSLevel]] = [None] * machine.core_count
        self._pending_event: list[Optional[Event]] = [None] * machine.core_count
        self._listeners: list[LevelListener] = []
        #: Fault injection: a stuck rail clamps every request to this level
        #: (``None`` = healthy).  Requests away from it still pay the ramp.
        self._stuck: list[Optional[DVFSLevel]] = [None] * machine.core_count

    # ------------------------------------------------------------- queries
    def level_of(self, core_id: int) -> DVFSLevel:
        """Operating point the core is *currently running at*."""
        return self._level[core_id]

    def target_of(self, core_id: int) -> DVFSLevel:
        """The level the core will be at once any in-flight ramp finishes."""
        pending = self._pending_target[core_id]
        return pending if pending is not None else self._level[core_id]

    def is_fast(self, core_id: int) -> bool:
        return self._level[core_id] is self._machine.fast

    def in_transition(self, core_id: int) -> bool:
        return self._pending_target[core_id] is not None

    def is_stuck(self, core_id: int) -> bool:
        """True once the rail was damaged by fault injection."""
        return self._stuck[core_id] is not None

    @property
    def transition_ns(self) -> float:
        return self._transition_ns

    def fast_count(self) -> int:
        """Number of cores currently *running* at the fast level."""
        return sum(1 for lv in self._level if lv is self._machine.fast)

    # ----------------------------------------------------------- listeners
    def add_listener(self, listener: LevelListener) -> None:
        """Register ``listener(core_id, old_level, new_level)`` for completed
        transitions."""
        self._listeners.append(listener)

    # ------------------------------------------------------------ requests
    def request(
        self,
        core_id: int,
        level: DVFSLevel,
        on_complete: Optional[Callable[[], None]] = None,
    ) -> bool:
        """Start ramping ``core_id`` toward ``level``.

        Returns ``True`` if a transition was started, ``False`` if the core is
        already at (and stably at) the requested level.  ``on_complete`` fires
        when the new operating point is live; for a no-op request it fires
        immediately (same timestamp).

        A rail damaged by :meth:`force_stuck` clamps every request to the
        stuck level: asking for a different level still charges a full
        transition (the controller attempts the ramp) but the rail settles
        back where it is stuck.
        """
        stuck = self._stuck[core_id]
        if stuck is not None and level is not stuck:
            level = stuck
        elif level is self._level[core_id] and self._pending_target[core_id] is None:
            if on_complete is not None:
                on_complete()
            return False
        # Restart any in-flight ramp toward the latest target.
        ev = self._pending_event[core_id]
        if ev is not None:
            ev.cancel()
        self._pending_target[core_id] = level
        san = self._sim.sanitizer
        if san is not None:
            san.on_dvfs_request(core_id, level.name, self._sim.now)

        def _complete() -> None:
            san = self._sim.sanitizer
            if san is not None:
                san.on_dvfs_complete(
                    core_id, level.name, self._sim.now, self._transition_ns
                )
            old = self._level[core_id]
            self._level[core_id] = level
            self._pending_target[core_id] = None
            self._pending_event[core_id] = None
            self._trace.record_freq_change(
                FreqChangeRecord(
                    core_id=core_id,
                    time_ns=self._sim.now,
                    old_level=old.name,
                    new_level=level.name,
                )
            )
            for listener in self._listeners:
                listener(core_id, old, level)
            if on_complete is not None:
                on_complete()

        self._pending_event[core_id] = self._sim.schedule(self._transition_ns, _complete)
        return True

    # ----------------------------------------------------- fault injection
    def force_stuck(self, core_id: int) -> None:
        """Damage the rail: it can no longer leave the slow level.

        If the core is currently fast (or ramping anywhere), one final ramp
        down to slow is started immediately; afterwards every request away
        from slow charges a full transition latency but lands back at slow.
        """
        slow = self._machine.slow
        self._stuck[core_id] = slow
        if self._level[core_id] is not slow or self._pending_target[core_id] is not None:
            self.request(core_id, slow)
