"""Machine configuration — a faithful transcription of Table I of the paper.

The paper simulates a 32-core out-of-order x86 processor with two DVFS
operating points implemented as dual-rail Vdd (Miller et al. [25]):

* fast:  2 GHz at 1.0 V
* slow:  1 GHz at 0.8 V
* DVFS reconfiguration latency: 25 µs

Everything configurable in the reproduction hangs off these dataclasses so
experiments can sweep any parameter while Table I remains the single default
source of truth.  The microarchitectural entries of Table I (issue width,
ROB size, cache geometry, mesh NoC) feed the analytic timing model in
:mod:`repro.sim.memory` and the power model in :mod:`repro.sim.power`; they
are retained here verbatim so `harness.table1` can regenerate the table.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Sequence

from .engine import US

__all__ = [
    "DVFSLevel",
    "CacheConfig",
    "NoCConfig",
    "CoreUArchConfig",
    "PowerModelConfig",
    "OverheadConfig",
    "MachineConfig",
    "FAST_LEVEL",
    "SLOW_LEVEL",
    "default_machine",
]


@dataclass(frozen=True)
class DVFSLevel:
    """One DVFS operating point (frequency + supply voltage)."""

    name: str
    freq_ghz: float
    voltage_v: float

    def __post_init__(self) -> None:
        if self.freq_ghz <= 0:
            raise ValueError(f"frequency must be positive, got {self.freq_ghz}")
        if self.voltage_v <= 0:
            raise ValueError(f"voltage must be positive, got {self.voltage_v}")

    @property
    def cycle_ns(self) -> float:
        """Duration of one core cycle in nanoseconds."""
        return 1.0 / self.freq_ghz


#: The paper's fast operating point: 2 GHz at 1.0 V.
FAST_LEVEL = DVFSLevel(name="fast", freq_ghz=2.0, voltage_v=1.0)
#: The paper's slow operating point: 1 GHz at 0.8 V.
SLOW_LEVEL = DVFSLevel(name="slow", freq_ghz=1.0, voltage_v=0.8)


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and latency of one cache level (Table I)."""

    name: str
    size_kb: int
    assoc: int
    line_bytes: int
    hit_cycles: int
    miss_cycles: int = 0  # only meaningful for the last level


@dataclass(frozen=True)
class NoCConfig:
    """Mesh network-on-chip parameters (Table I: 4x8 mesh, 1-cycle links)."""

    rows: int = 4
    cols: int = 8
    link_cycles: int = 1
    router_cycles: int = 1

    def __post_init__(self) -> None:
        if self.rows <= 0 or self.cols <= 0:
            raise ValueError("mesh dimensions must be positive")

    @property
    def node_count(self) -> int:
        return self.rows * self.cols


@dataclass(frozen=True)
class CoreUArchConfig:
    """Out-of-order core microarchitecture (Table I).

    These values parameterize the per-task timing blend in
    :mod:`repro.sim.memory` and the per-core power scale in
    :mod:`repro.sim.power`; they are not simulated cycle-by-cycle.
    """

    fetch_width: int = 4
    issue_width: int = 4
    commit_width: int = 4
    rob_entries: int = 128
    issue_queue_entries: int = 64
    int_registers: int = 256
    fp_registers: int = 256
    btb_entries: int = 4096
    ras_entries: int = 32
    l1i: CacheConfig = field(
        default_factory=lambda: CacheConfig("L1I", 32, 2, 64, hit_cycles=2)
    )
    l1d: CacheConfig = field(
        default_factory=lambda: CacheConfig("L1D", 64, 2, 64, hit_cycles=2)
    )
    itlb_entries: int = 256
    dtlb_entries: int = 256


@dataclass(frozen=True)
class PowerModelConfig:
    """Analytic CMOS power-model constants (substitutes McPAT @ 22 nm).

    Dynamic power of a core running at frequency ``f`` (GHz) and voltage
    ``V`` with activity factor ``a`` is ``dyn_w_per_ghz_v2 * f * V^2 * a``.
    Leakage scales linearly with voltage around the nominal point (a first
    order fit of the exponential; adequate for a 0.8–1.0 V range).
    """

    #: Dynamic power coefficient in W / (GHz * V^2).  Chosen so a fast core
    #: (2 GHz, 1.0 V, a=1) burns ~4.5 W, in line with McPAT 22 nm OoO cores.
    dyn_w_per_ghz_v2: float = 2.25
    #: Core leakage at 1.0 V in W.
    leak_w_at_nominal: float = 1.5
    nominal_voltage_v: float = 1.0
    #: Fraction of dynamic power still switching when the core idles in C0
    #: (clock distribution, snoop logic) — Gem5/McPAT default clock gating.
    idle_c0_activity: float = 0.30
    #: C1 (halt) keeps leakage and a trickle of clock power.
    idle_c1_activity: float = 0.04
    #: C3 power-gates most of the core: residual fraction of leakage.
    c3_leak_fraction: float = 0.15
    #: Constant uncore power (shared L2 banks, directory, NoC) in W.
    uncore_w: float = 10.0

    def __post_init__(self) -> None:
        if self.dyn_w_per_ghz_v2 <= 0:
            raise ValueError("dynamic power coefficient must be positive")
        if not (0.0 <= self.idle_c1_activity <= self.idle_c0_activity <= 1.0):
            raise ValueError("idle activities must satisfy 0 <= C1 <= C0 <= 1")


@dataclass(frozen=True)
class OverheadConfig:
    """Latency constants for runtime/OS/hardware mechanisms.

    The values land in the ranges the paper reports (Section V-C: average
    reconfiguration latency 11–65 µs; software path = user→kernel crossing +
    cpufreq driver + serialized 25 µs hardware transition).
    """

    #: gem5 DVFS transition latency (Table I): 25 us.
    dvfs_transition_ns: float = 25.0 * US
    #: User-space → kernel crossing (interrupt + mode switch) for a cpufreq
    #: file write.
    kernel_crossing_ns: float = 2.0 * US
    #: cpufreq driver execution (writes DVFS controller, updates kernel clock
    #: bookkeeping).
    cpufreq_driver_ns: float = 3.0 * US
    #: Runtime scheduler cost paid by a worker per task request.
    schedule_request_ns: float = 800.0
    #: Runtime cost to create/submit one task (allocation, dependence
    #: registration), excluding criticality estimation.
    task_submit_ns: float = 600.0
    #: Bottom-level estimator: cost per TDG edge traversed during the
    #: upward BL update walk (Section II-B: exploring the TDG on every task
    #: creation is costly in dense graphs).
    bl_edge_cost_ns: float = 70.0
    #: Cost of one RSU ISA operation (rsu_start_task / rsu_end_task).
    rsu_op_ns: float = 10.0
    #: Idle worker spins this long before executing `halt` (C0 -> C1).
    idle_spin_ns: float = 600.0 * US
    #: OS promotes a C1 core to C3 after this much uninterrupted idleness.
    c3_promotion_ns: float = 200.0 * US
    #: Wakeup latency out of C1 (resume from halt).
    c1_wake_ns: float = 1.0 * US
    #: Wakeup latency out of C3 (power ungating + state restore).
    c3_wake_ns: float = 30.0 * US
    #: Context switch cost used by the RSU virtualization model.
    context_switch_ns: float = 5.0 * US


@dataclass(frozen=True)
class MachineConfig:
    """Complete simulated machine: Table I plus model constants."""

    core_count: int = 32
    fast: DVFSLevel = FAST_LEVEL
    slow: DVFSLevel = SLOW_LEVEL
    uarch: CoreUArchConfig = field(default_factory=CoreUArchConfig)
    noc: NoCConfig = field(default_factory=NoCConfig)
    l2_per_core_mb: float = 2.0
    l2_assoc: int = 8
    l2_hit_cycles: int = 15
    l2_miss_cycles: int = 300
    directory_entries: int = 65536
    power: PowerModelConfig = field(default_factory=PowerModelConfig)
    overheads: OverheadConfig = field(default_factory=OverheadConfig)
    #: Opt-in shared-bandwidth contention: a task's memory time is scaled by
    #: ``1 + alpha * max(0, busy_fraction - threshold)`` sampled at task
    #: start.  ``alpha = 0`` (the default) disables the model, keeping the
    #: paper-calibrated behaviour; the ablation bench sweeps it.
    mem_contention_alpha: float = 0.0
    mem_contention_threshold: float = 0.5

    def __post_init__(self) -> None:
        if self.core_count <= 0:
            raise ValueError("core_count must be positive")
        if self.mem_contention_alpha < 0:
            raise ValueError("mem_contention_alpha must be non-negative")
        if not (0.0 <= self.mem_contention_threshold <= 1.0):
            raise ValueError("mem_contention_threshold must be in [0, 1]")
        if self.fast.freq_ghz <= self.slow.freq_ghz:
            raise ValueError("fast level must be faster than slow level")
        if self.noc.node_count < self.core_count:
            raise ValueError(
                f"NoC has {self.noc.node_count} nodes but machine has "
                f"{self.core_count} cores"
            )

    @property
    def levels(self) -> Sequence[DVFSLevel]:
        """All operating points, slow first."""
        return (self.slow, self.fast)

    def with_cores(self, core_count: int, noc: NoCConfig | None = None) -> "MachineConfig":
        """Derive a config with a different core count (for scaling studies)."""
        if noc is None:
            # Keep a two-row mesh shape when possible.
            cols = max(1, (core_count + 1) // 2)
            noc = NoCConfig(rows=2 if core_count > 1 else 1, cols=cols)
        return replace(self, core_count=core_count, noc=noc)


def default_machine() -> MachineConfig:
    """The paper's 32-core machine exactly as described by Table I."""
    return MachineConfig()
