"""Discrete-event multicore/DVFS simulator substrate.

This package is the reproduction's gem5 substitute: a deterministic
task-granularity simulator of a 32-core machine with per-core DVFS
(Table I of the paper), ACPI C-states, an analytic McPAT-style power model,
and explicit cost models for the software reconfiguration path
(locks + cpufreq kernel crossings).
"""

from .config import (
    FAST_LEVEL,
    SLOW_LEVEL,
    CacheConfig,
    CoreUArchConfig,
    DVFSLevel,
    MachineConfig,
    NoCConfig,
    OverheadConfig,
    PowerModelConfig,
    default_machine,
)
from .core_model import Core, CoreError, ExecutableWork
from .cstates import CStateController
from .dvfs import DVFSController
from .energy import EnergyAccountant
from .engine import MS, NS, SEC, US, Event, SimulationError, Simulator
from .kernel import CpufreqFramework
from .locks import LockStats, SimLock
from .memory import duration_at, speedup_at_fast, split_by_boundedness
from .power import CoreState, PowerModel, core_power_w
from .trace import (
    CStateRecord,
    FreqChangeRecord,
    LockWaitRecord,
    ReconfigRecord,
    TaskSpan,
    Trace,
)

__all__ = [
    "Simulator",
    "Event",
    "SimulationError",
    "NS",
    "US",
    "MS",
    "SEC",
    "MachineConfig",
    "DVFSLevel",
    "CacheConfig",
    "NoCConfig",
    "CoreUArchConfig",
    "PowerModelConfig",
    "OverheadConfig",
    "FAST_LEVEL",
    "SLOW_LEVEL",
    "default_machine",
    "Core",
    "CoreError",
    "ExecutableWork",
    "CStateController",
    "DVFSController",
    "EnergyAccountant",
    "CpufreqFramework",
    "SimLock",
    "LockStats",
    "PowerModel",
    "CoreState",
    "core_power_w",
    "Trace",
    "TaskSpan",
    "ReconfigRecord",
    "LockWaitRecord",
    "CStateRecord",
    "FreqChangeRecord",
    "duration_at",
    "split_by_boundedness",
    "speedup_at_fast",
]
