"""ACPI C-state controller (C0 / C1 / C3) for idle cores.

Models the behaviour the paper's TurboMode comparison depends on
(Section III-B.5 and V-D):

* an idle worker spins briefly in user space (C0, low activity),
* then executes ``halt`` — the core enters C1 and the hardware TurboMode
  microcontroller is notified,
* if the core stays idle long enough the OS suggests C3 (deep sleep),
* waking costs :attr:`c1_wake_ns` or :attr:`c3_wake_ns` depending on depth.

The controller exposes halt/wake listener hooks; the TurboMode model in
:mod:`repro.core.turbomode` subscribes to them.  Blocked-in-kernel tasks
(handled inside :class:`~repro.sim.core_model.Core`) fire the same halt
listeners via :meth:`notify_halt` so TurboMode can reclaim their budget.
"""

from __future__ import annotations

from typing import Callable, Optional

from .config import MachineConfig
from .core_model import Core
from .engine import Event, Simulator

__all__ = ["CStateController"]

HaltListener = Callable[[int], None]
WakeListener = Callable[[int], None]


class CStateController:
    """Drives the idle-state machine of every core."""

    def __init__(self, sim: Simulator, machine: MachineConfig, cores: list[Core]) -> None:
        self._sim = sim
        self._ov = machine.overheads
        self._cores = cores
        self._halt_event: list[Optional[Event]] = [None] * len(cores)
        self._c3_event: list[Optional[Event]] = [None] * len(cores)
        self._idle: list[bool] = [False] * len(cores)
        self._halt_listeners: list[HaltListener] = []
        self._wake_listeners: list[WakeListener] = []

    # ----------------------------------------------------------- listeners
    def add_halt_listener(self, listener: HaltListener) -> None:
        """``listener(core_id)`` fires when a core executes halt (C0→C1)."""
        self._halt_listeners.append(listener)

    def add_wake_listener(self, listener: WakeListener) -> None:
        """``listener(core_id)`` fires when a sleeping/halted core wakes."""
        self._wake_listeners.append(listener)

    def notify_halt(self, core_id: int) -> None:
        """Propagate an externally caused halt (a task blocking in-kernel)."""
        for listener in self._halt_listeners:
            listener(core_id)

    def notify_wake(self, core_id: int) -> None:
        """Propagate an externally caused wake (a blocked task resuming)."""
        for listener in self._wake_listeners:
            listener(core_id)

    # ------------------------------------------------------------ idleness
    def is_idle(self, core_id: int) -> bool:
        return self._idle[core_id]

    def enter_idle(self, core_id: int) -> None:
        """The worker on ``core_id`` found no ready task.

        The core spins in C0 for ``idle_spin_ns``, halts to C1, and is
        promoted to C3 after ``c3_promotion_ns`` of uninterrupted idleness.
        """
        if self._idle[core_id]:
            return
        self._idle[core_id] = True
        core = self._cores[core_id]
        core.set_spinning(False)

        def _halt() -> None:
            self._halt_event[core_id] = None
            if not self._idle[core_id]:
                return
            core.set_cstate("C1")
            for listener in self._halt_listeners:
                listener(core_id)

            def _deep_sleep() -> None:
                self._c3_event[core_id] = None
                if not self._idle[core_id]:
                    return
                core.set_cstate("C3")

            self._c3_event[core_id] = self._sim.schedule(
                self._ov.c3_promotion_ns, _deep_sleep
            )

        self._halt_event[core_id] = self._sim.schedule(self._ov.idle_spin_ns, _halt)

    def wake(self, core_id: int) -> float:
        """Wake an idle core; returns the wake latency in ns.

        The caller must delay any work start by the returned latency (zero
        if the core was still spinning in C0).
        """
        if not self._idle[core_id]:
            return 0.0
        self._idle[core_id] = False
        for ev_list in (self._halt_event, self._c3_event):
            ev = ev_list[core_id]
            if ev is not None:
                ev.cancel()
                ev_list[core_id] = None
        core = self._cores[core_id]
        state = core.cstate
        if state == "C0":
            latency = 0.0
        elif state == "C1":
            latency = self._ov.c1_wake_ns
        else:  # C3
            latency = self._ov.c3_wake_ns
        if state != "C0":
            core.set_cstate("C0")
            for listener in self._wake_listeners:
                listener(core_id)
        return latency

    # ----------------------------------------------------- fault injection
    def power_off(self, core_id: int) -> None:
        """Park a failed core in deep sleep permanently.

        Idle timers are cancelled and the core drops straight to C3.  No
        halt/wake listeners fire — this is not an idle transition the
        TurboMode microcontroller reacts to; the acceleration managers learn
        about the failure through their own ``on_core_failed`` hook.
        """
        self._idle[core_id] = False
        for ev_list in (self._halt_event, self._c3_event):
            ev = ev_list[core_id]
            if ev is not None:
                ev.cancel()
                ev_list[core_id] = None
        self._cores[core_id].set_cstate("C3")
