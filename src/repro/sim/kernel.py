"""The Linux cpufreq path cost model.

The paper's software CATA changes a core's operating point through the
standard user-space-governor interface (Section III-A):

1. the runtime writes the new power state to a per-core sysfs file,
2. the write traps into the kernel (interrupt + mode switch),
3. the cpufreq driver programs the DVFS controller,
4. the hardware performs the voltage/frequency ramp (25 µs in Table I),
5. the kernel updates its clock bookkeeping and returns to user space.

:class:`CpufreqFramework.write_level` models steps 2–5 as explicit simulated
delays on the *calling* core, invoking ``on_done`` when the new operating
point is live.  The total per-write latency is therefore::

    kernel_crossing + cpufreq_driver + dvfs_transition

which, combined with lock waits, lands the end-to-end software
reconfiguration latency in the paper's observed 11–65 µs band.
"""

from __future__ import annotations

from typing import Callable

from .config import DVFSLevel, MachineConfig
from .dvfs import DVFSController
from .engine import Simulator

__all__ = ["CpufreqFramework"]


class CpufreqFramework:
    """User-space-governor interface to the DVFS controller."""

    def __init__(self, sim: Simulator, machine: MachineConfig, dvfs: DVFSController) -> None:
        self._sim = sim
        self._ov = machine.overheads
        self._dvfs = dvfs
        self._writes = 0
        self._total_write_ns = 0.0

    @property
    def writes(self) -> int:
        """Number of sysfs writes performed (each is one kernel round trip)."""
        return self._writes

    @property
    def total_write_ns(self) -> float:
        """Aggregate wall time spent inside the cpufreq path."""
        return self._total_write_ns

    def software_path_ns(self) -> float:
        """Fixed software cost of one write, excluding the hardware ramp."""
        return self._ov.kernel_crossing_ns + self._ov.cpufreq_driver_ns

    def write_level(
        self,
        core_id: int,
        level: DVFSLevel,
        on_done: Callable[[], None],
        wait_for_transition: bool = True,
    ) -> None:
        """Write ``level`` into the sysfs file of ``core_id``.

        ``on_done`` fires after the full path completes.  When
        ``wait_for_transition`` is true (the paper's serialized software
        implementation) the caller also waits out the 25 µs hardware ramp so
        the power-budget invariant can never be transiently violated; when
        false, the caller returns after the driver hands the request to the
        hardware (used by ablations only).
        """
        start = self._sim.now
        self._writes += 1

        def _in_driver() -> None:
            def _finish() -> None:
                self._total_write_ns += self._sim.now - start
                on_done()

            if wait_for_transition:
                changed = self._dvfs.request(core_id, level, on_complete=_finish)
                if not changed:
                    # Already at the requested level: only software cost paid.
                    pass
            else:
                self._dvfs.request(core_id, level)
                _finish()

        self._sim.schedule(self.software_path_ns(), _in_driver)
