"""Exact energy integration over per-core state intervals.

Every time a core changes any power-relevant attribute (DVFS level, C-state,
activity, busy flag) the accountant closes the open interval at the old power
draw and opens a new one.  Total energy is therefore an exact integral of the
piecewise-constant power signal — no sampling error, fully deterministic.

EDP (energy-delay product), the paper's energy metric, is provided at the
end of a run as ``energy_j * exec_time_s``.
"""

from __future__ import annotations

from .engine import SEC, Simulator
from .power import CoreState, PowerModel

__all__ = ["EnergyAccountant"]


class EnergyAccountant:
    """Integrates chip energy (cores + uncore) over simulation time."""

    #: Breakdown bucket names, in reporting order.
    BUCKETS = ("busy_fast", "busy_slow", "idle_c0", "halt_c1", "sleep_c3")

    def __init__(self, sim: Simulator, model: PowerModel, core_count: int) -> None:
        self._sim = sim
        self._model = model
        self._core_count = core_count
        self._core_energy_j = [0.0] * core_count
        self._core_last_change_ns = [0.0] * core_count
        self._core_state: list[CoreState | None] = [None] * core_count
        self._start_ns = sim.now
        self._finalized_at_ns: float | None = None
        self._bucket_energy_j: dict[str, float] = {b: 0.0 for b in self.BUCKETS}
        self._bucket_time_ns: dict[str, float] = {b: 0.0 for b in self.BUCKETS}
        #: (watts, bucket, state) per distinct CoreState *object*.  A run
        #: only ever visits a handful of states per core (level × C-state ×
        #: activity), while set_state fires on every task/overhead/C-state
        #: edge — memoizing the power model here removes the whole
        #: core_w()/_bucket_of() pipeline from the inner loop.  Keyed by
        #: id(state) rather than the state: the dataclass-generated
        #: __hash__/__eq__ walk every field (including the nested DVFSLevel)
        #: and dominated this path.  Cores intern their states, and the
        #: cached tuple holds the state itself, so the id cannot be recycled
        #: while the entry exists.
        self._power_bucket: dict[int, tuple[float, str, CoreState]] = {}
        #: Power/bucket of each core's *current* state, resolved once when
        #: the state is set so _accrue never hashes a CoreState.
        self._core_power: list[float] = [0.0] * core_count
        self._core_bucket: list[str] = [""] * core_count

    @staticmethod
    def _bucket_of(state: CoreState) -> str:
        """Which breakdown bucket a core state accrues into."""
        if state.cstate == "C3":
            return "sleep_c3"
        if state.cstate == "C1":
            return "halt_c1"
        if not state.busy:
            return "idle_c0"
        return "busy_fast" if state.level.name == "fast" else "busy_slow"

    # ------------------------------------------------------------- updates
    def set_state(self, core_id: int, state: CoreState) -> None:
        """Record that ``core_id`` is in ``state`` from now on."""
        self._accrue(core_id)
        self._core_state[core_id] = state
        entry = self._power_bucket.get(id(state))
        if entry is None:
            entry = (self._model.core_w(state), self._bucket_of(state), state)
            self._power_bucket[id(state)] = entry
        self._core_power[core_id] = entry[0]
        self._core_bucket[core_id] = entry[1]

    def _accrue(self, core_id: int) -> None:
        # Reads the simulator clock directly (not through the `now`
        # property): this runs on every power-relevant state edge.
        now = self._sim._now
        if self._core_state[core_id] is not None:
            last_change = self._core_last_change_ns
            dt_ns = now - last_change[core_id]
            if dt_ns < 0:
                raise RuntimeError("time went backwards in energy accounting")
            # Power/bucket were resolved when this state was installed.
            joules = self._core_power[core_id] * dt_ns / SEC
            bucket = self._core_bucket[core_id]
            self._core_energy_j[core_id] += joules
            self._bucket_energy_j[bucket] += joules
            self._bucket_time_ns[bucket] += dt_ns
            last_change[core_id] = now
        else:
            self._core_last_change_ns[core_id] = now

    # ------------------------------------------------------------- results
    def finalize(self) -> None:
        """Close all open intervals at the current simulation time."""
        for core_id in range(self._core_count):
            self._accrue(core_id)
        self._finalized_at_ns = self._sim.now

    @property
    def elapsed_s(self) -> float:
        end = self._finalized_at_ns if self._finalized_at_ns is not None else self._sim.now
        return (end - self._start_ns) / SEC

    def core_energy_j(self, core_id: int) -> float:
        """Accrued energy of one core (call :meth:`finalize` first)."""
        return self._core_energy_j[core_id]

    @property
    def cores_energy_j(self) -> float:
        return sum(self._core_energy_j)

    @property
    def uncore_energy_j(self) -> float:
        return self._model.uncore_w() * self.elapsed_s

    @property
    def total_energy_j(self) -> float:
        return self.cores_energy_j + self.uncore_energy_j

    @property
    def edp(self) -> float:
        """Energy-Delay Product in joule-seconds."""
        return self.total_energy_j * self.elapsed_s

    # ----------------------------------------------------------- breakdown
    def energy_breakdown_j(self) -> dict[str, float]:
        """Core energy split by state bucket, plus the uncore term.

        The buckets explain *where the energy went* — the paper's EDP
        argument is precisely that CATA removes ``idle_c0``/``busy_fast``
        waste by decelerating cores that finished their tasks.
        """
        out = dict(self._bucket_energy_j)
        out["uncore"] = self.uncore_energy_j
        return out

    def time_breakdown_ns(self) -> dict[str, float]:
        """Aggregate core-time spent in each state bucket."""
        return dict(self._bucket_time_ns)
