"""Exact energy integration over per-core state intervals.

Every time a core changes any power-relevant attribute (DVFS level, C-state,
activity, busy flag) the accountant closes the open interval at the old power
draw and opens a new one.  Total energy is therefore an exact integral of the
piecewise-constant power signal — no sampling error, fully deterministic.

Two integration modes produce bit-identical results (pinned by
tests/golden and ``tests/sim/test_arrays.py``):

* **interval-batched** (default; the array-kernel path): ``set_state``
  only appends ``(t, core, power, bucket)`` to the flat
  :class:`~repro.sim.arrays.TransitionLog`; the integration runs as one
  replay sweep at :meth:`finalize` — and at any earlier sync point (a
  mid-run property read, or the periodic flush bounding log memory).
  Replaying transitions in append order reproduces the exact float
  summation order of the eager path: per-core partial sums accrue in
  that core's chronological order and the bucket sums in the global
  chronological interleaving, because that *is* append order.  A prefix
  flush performs the same additions at the same points in the sequence,
  so syncing early is bitwise-neutral.  The sweep itself runs in C when
  :func:`repro.sim.arrays.native_enabled` (compiled with FP contraction
  off, so every multiply/divide rounds exactly as CPython does), else
  as a Python loop over the same buffers.
* **eager** (``REPRO_ARRAY_KERNELS=0``): the historical per-edge accrual
  in ``set_state`` itself.

All accumulators live in ``array('d')`` buffers shared by every mode —
a C double round-trips Python floats exactly, so the representation is
bitwise-neutral too.

EDP (energy-delay product), the paper's energy metric, is provided at the
end of a run as ``energy_j * exec_time_s``.
"""

from __future__ import annotations

from array import array
from typing import Optional

from . import _ckernels, arrays
from .engine import SEC, Simulator
from .power import CoreState, PowerModel

__all__ = ["EnergyAccountant"]

#: Replay the transition log whenever it grows past this many entries —
#: bounds memory on long cells without changing any float (prefix sums).
_FLUSH_THRESHOLD = 65536


class EnergyAccountant:
    """Integrates chip energy (cores + uncore) over simulation time."""

    #: Breakdown bucket names, in reporting order (bucket index order).
    BUCKETS = ("busy_fast", "busy_slow", "idle_c0", "halt_c1", "sleep_c3")

    def __init__(
        self,
        sim: Simulator,
        model: PowerModel,
        core_count: int,
        batched: Optional[bool] = None,
        shared_power_memo: Optional[dict] = None,
        log: Optional[arrays.TransitionLog] = None,
    ) -> None:
        """``batched`` selects interval-batched integration (default: the
        ``REPRO_ARRAY_KERNELS`` environment toggle).  ``shared_power_memo``
        is an arena-scoped, *value-keyed* ``{CoreState: (watts, bucket)}``
        cache shared across cells of one machine fingerprint;
        ``log`` donates a reusable transition-log buffer (arena)."""
        self._sim = sim
        self._model = model
        self._core_count = core_count
        self._core_energy_j = array("d", bytes(8 * core_count))
        self._core_last_change_ns = array("d", bytes(8 * core_count))
        #: Power/bucket of each core's current state, installed whenever a
        #: transition is applied (eagerly, or by the replay sweep).
        self._core_power = array("d", bytes(8 * core_count))
        self._core_bidx = array("q", bytes(8 * core_count))
        self._has_state = array("b", bytes(core_count))
        self._start_ns = sim.now
        self._finalized_at_ns: float | None = None
        self._bucket_energy = array("d", bytes(8 * len(self.BUCKETS)))
        self._bucket_time = array("d", bytes(8 * len(self.BUCKETS)))
        #: (watts, bucket_index, state) per distinct CoreState *object*.
        #: A run only ever visits a handful of states per core (level ×
        #: C-state × activity), while set_state fires on every
        #: task/overhead/C-state edge — memoizing the power model here
        #: removes the whole core_w()/_bucket_of() pipeline from the
        #: inner loop.  Keyed by id(state) rather than the state: the
        #: dataclass-generated __hash__/__eq__ walk every field
        #: (including the nested DVFSLevel) and dominated this path.
        #: Cores intern their states, and the cached tuple holds the
        #: state itself, so the id cannot be recycled while the entry
        #: exists.
        self._power_bucket: dict[int, tuple[float, int, CoreState]] = {}
        #: Arena-level L2 behind the id-keyed L1: keyed by the CoreState
        #: *value* (frozen dataclass), so entries survive across cells of a
        #: multi-cell worker session without any id-recycling hazard.  The
        #: arena clears it when the machine fingerprint changes — power is a
        #: pure function of (machine, state).  Hashing a state walks its
        #: fields, but only on an L1 miss: a handful of times per cell.
        self._shared_power_memo = shared_power_memo
        self._batched = arrays.kernels_enabled(batched)
        self._native = self._batched and arrays.native_enabled()
        self._log = log if log is not None else arrays.TransitionLog()

    @staticmethod
    def _bucket_of(state: CoreState) -> str:
        """Which breakdown bucket a core state accrues into."""
        if state.cstate == "C3":
            return "sleep_c3"
        if state.cstate == "C1":
            return "halt_c1"
        if not state.busy:
            return "idle_c0"
        return "busy_fast" if state.level.name == "fast" else "busy_slow"

    def _resolve(self, state: CoreState) -> tuple[float, int, CoreState]:
        """(watts, bucket_index, state) via the L1 id-memo, then the L2."""
        entry = self._power_bucket.get(id(state))
        if entry is None:
            shared = self._shared_power_memo
            if shared is not None:
                cached = shared.get(state)
                if cached is None:
                    cached = (
                        self._model.core_w(state),
                        self.BUCKETS.index(self._bucket_of(state)),
                    )
                    shared[state] = cached
                # The L1 entry must hold *this* state object (not the
                # value-equal one keying the L2) so its id stays pinned.
                entry = (cached[0], cached[1], state)
            else:
                entry = (
                    self._model.core_w(state),
                    self.BUCKETS.index(self._bucket_of(state)),
                    state,
                )
            self._power_bucket[id(state)] = entry
        return entry

    # ------------------------------------------------------------- updates
    def set_state(self, core_id: int, state: CoreState) -> None:
        """Record that ``core_id`` is in ``state`` from now on."""
        entry = self._power_bucket.get(id(state))
        if entry is None:
            entry = self._resolve(state)
        if self._batched:
            log = self._log
            log.t.append(self._sim._now)
            log.core.append(core_id)
            log.power.append(entry[0])
            log.bidx.append(entry[1])
            if len(log.t) >= _FLUSH_THRESHOLD:
                self._sync()
            return
        self._accrue(core_id)
        self._has_state[core_id] = 1
        self._core_power[core_id] = entry[0]
        self._core_bidx[core_id] = entry[1]

    def _accrue(self, core_id: int) -> None:
        # Reads the simulator clock directly (not through the `now`
        # property): this runs on every power-relevant state edge.
        now = self._sim._now
        if self._has_state[core_id]:
            dt_ns = now - self._core_last_change_ns[core_id]
            if dt_ns < 0:
                raise RuntimeError("time went backwards in energy accounting")
            # Power/bucket were installed when this state was applied.
            joules = self._core_power[core_id] * dt_ns / SEC
            bucket = self._core_bidx[core_id]
            self._core_energy_j[core_id] += joules
            self._bucket_energy[bucket] += joules
            self._bucket_time[bucket] += dt_ns
        self._core_last_change_ns[core_id] = now

    def _sync(self) -> None:
        """Replay the pending transition log (batched mode).

        One sweep over the flat buffers, performing exactly the additions
        the eager path would have performed at each ``set_state`` edge, in
        the same order.  No-op when the log is empty (eager mode, or
        nothing pending).
        """
        log = self._log
        n = len(log.t)
        if not n:
            return
        if self._native:
            addr = lambda a: a.buffer_info()[0]  # noqa: E731
            bad = _ckernels.load().energy_replay(
                addr(log.t),
                addr(log.core),
                addr(log.power),
                addr(log.bidx),
                n,
                addr(self._core_energy_j),
                addr(self._core_last_change_ns),
                addr(self._core_power),
                addr(self._core_bidx),
                addr(self._has_state),
                addr(self._bucket_energy),
                addr(self._bucket_time),
            )
            if bad >= 0:
                raise RuntimeError("time went backwards in energy accounting")
            log.clear()
            return
        has_state = self._has_state
        last_change = self._core_last_change_ns
        core_energy = self._core_energy_j
        bucket_energy = self._bucket_energy
        bucket_time = self._bucket_time
        core_power = self._core_power
        core_bidx = self._core_bidx
        sec = SEC
        for now, core_id, power, bidx in zip(log.t, log.core, log.power, log.bidx):
            if has_state[core_id]:
                dt_ns = now - last_change[core_id]
                if dt_ns < 0:
                    raise RuntimeError("time went backwards in energy accounting")
                joules = core_power[core_id] * dt_ns / sec
                bucket = core_bidx[core_id]
                core_energy[core_id] += joules
                bucket_energy[bucket] += joules
                bucket_time[bucket] += dt_ns
            else:
                has_state[core_id] = 1
            last_change[core_id] = now
            core_power[core_id] = power
            core_bidx[core_id] = bidx
        log.clear()

    # ------------------------------------------------------------- results
    def finalize(self) -> None:
        """Close all open intervals at the current simulation time."""
        self._sync()
        for core_id in range(self._core_count):
            self._accrue(core_id)
        self._finalized_at_ns = self._sim.now

    @property
    def elapsed_s(self) -> float:
        end = self._finalized_at_ns if self._finalized_at_ns is not None else self._sim.now
        return (end - self._start_ns) / SEC

    def core_energy_j(self, core_id: int) -> float:
        """Accrued energy of one core (call :meth:`finalize` first)."""
        self._sync()
        return self._core_energy_j[core_id]

    @property
    def cores_energy_j(self) -> float:
        self._sync()
        return sum(self._core_energy_j)

    @property
    def uncore_energy_j(self) -> float:
        return self._model.uncore_w() * self.elapsed_s

    @property
    def total_energy_j(self) -> float:
        return self.cores_energy_j + self.uncore_energy_j

    @property
    def edp(self) -> float:
        """Energy-Delay Product in joule-seconds."""
        return self.total_energy_j * self.elapsed_s

    # ----------------------------------------------------------- breakdown
    def energy_breakdown_j(self) -> dict[str, float]:
        """Core energy split by state bucket, plus the uncore term.

        The buckets explain *where the energy went* — the paper's EDP
        argument is precisely that CATA removes ``idle_c0``/``busy_fast``
        waste by decelerating cores that finished their tasks.
        """
        self._sync()
        out = {name: self._bucket_energy[i] for i, name in enumerate(self.BUCKETS)}
        out["uncore"] = self.uncore_energy_j
        return out

    def time_breakdown_ns(self) -> dict[str, float]:
        """Aggregate core-time spent in each state bucket."""
        self._sync()
        return {name: self._bucket_time[i] for i, name in enumerate(self.BUCKETS)}
