"""High-level task timing derivation.

Bridges workload descriptions to the execution model: a workload generator
describes a task either

* directly, as ``(cpu_cycles, mem_ns)``, or
* behaviourally, as ``(duration at the slow level, memory-boundedness β)``
  where β is the fraction of slow-level wall time that does **not** scale
  with frequency, or
* architecturally, as ``(instruction count, MemoryProfile)`` via
  :func:`repro.sim.cache.amat_split`.

The second form is the workhorse: published PARSEC characterizations give
per-benchmark memory-boundedness, and β directly controls how much a task
benefits from acceleration — a fast core speeds a task up by
``1 / (β + (1-β)·f_slow/f_fast)``, i.e. 2× for β=0 and 1× for β=1 with the
paper's 1 GHz/2 GHz pair.
"""

from __future__ import annotations

from .config import MachineConfig

__all__ = ["split_by_boundedness", "duration_at", "speedup_at_fast"]


def split_by_boundedness(
    duration_slow_ns: float, beta: float, machine: MachineConfig
) -> tuple[float, float]:
    """Split a slow-level duration into ``(cpu_cycles, mem_ns)``.

    Parameters
    ----------
    duration_slow_ns:
        Task wall time when running on a slow core.
    beta:
        Memory-boundedness in [0, 1]: fraction of that wall time which is
        frequency-invariant (L2/DRAM/NoC/I-O time).
    """
    if duration_slow_ns < 0:
        raise ValueError("duration must be non-negative")
    if not (0.0 <= beta <= 1.0):
        raise ValueError(f"beta must be in [0,1], got {beta}")
    mem_ns = duration_slow_ns * beta
    cpu_ns = duration_slow_ns - mem_ns
    cpu_cycles = cpu_ns * machine.slow.freq_ghz
    return cpu_cycles, mem_ns


def duration_at(cpu_cycles: float, mem_ns: float, freq_ghz: float) -> float:
    """Wall time of a task at a given core frequency."""
    if freq_ghz <= 0:
        raise ValueError("frequency must be positive")
    return cpu_cycles / freq_ghz + mem_ns


def speedup_at_fast(beta: float, machine: MachineConfig) -> float:
    """Ideal task speedup from slow to fast level given boundedness β."""
    ratio = machine.slow.freq_ghz / machine.fast.freq_ghz
    return 1.0 / (beta + (1.0 - beta) * ratio)
