"""Machine-configuration and run-result serialization.

gem5 experiments live or die by knowing exactly what configuration produced
a result; this module gives the reproduction the same property: a
round-trippable JSON form of :class:`~repro.sim.config.MachineConfig`, used
to stamp experiment outputs and to load swept configurations back, plus a
round-trippable JSON form of :class:`~repro.runtime.system.RunResult`
(including its :class:`~repro.sim.trace.Trace`), which the on-disk sweep
result cache (:mod:`repro.harness.cache`) persists between invocations.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Any

from .config import (
    CacheConfig,
    CoreUArchConfig,
    DVFSLevel,
    MachineConfig,
    NoCConfig,
    OverheadConfig,
    PowerModelConfig,
)
from .trace import (
    CStateRecord,
    FreqChangeRecord,
    LockWaitRecord,
    ReconfigRecord,
    TaskSpan,
    Trace,
)

__all__ = [
    "machine_to_dict",
    "machine_from_dict",
    "dump_machine",
    "load_machine",
    "trace_to_dict",
    "trace_from_dict",
    "result_to_dict",
    "result_from_dict",
    "dump_result",
    "load_result",
]


def machine_to_dict(machine: MachineConfig) -> dict[str, Any]:
    """Plain-dict form of a machine configuration (JSON-safe)."""
    return dataclasses.asdict(machine)


def _level(d: dict[str, Any]) -> DVFSLevel:
    return DVFSLevel(**d)


def _cache(d: dict[str, Any]) -> CacheConfig:
    return CacheConfig(**d)


def machine_from_dict(data: dict[str, Any]) -> MachineConfig:
    """Rebuild a :class:`MachineConfig` from :func:`machine_to_dict` output."""
    uarch_d = dict(data["uarch"])
    uarch_d["l1i"] = _cache(uarch_d["l1i"])
    uarch_d["l1d"] = _cache(uarch_d["l1d"])
    return MachineConfig(
        core_count=data["core_count"],
        fast=_level(data["fast"]),
        slow=_level(data["slow"]),
        uarch=CoreUArchConfig(**uarch_d),
        noc=NoCConfig(**data["noc"]),
        l2_per_core_mb=data["l2_per_core_mb"],
        l2_assoc=data["l2_assoc"],
        l2_hit_cycles=data["l2_hit_cycles"],
        l2_miss_cycles=data["l2_miss_cycles"],
        directory_entries=data["directory_entries"],
        power=PowerModelConfig(**data["power"]),
        overheads=OverheadConfig(**data["overheads"]),
        mem_contention_alpha=data.get("mem_contention_alpha", 0.0),
        mem_contention_threshold=data.get("mem_contention_threshold", 0.5),
    )


#: Trace record lists and the dataclass each element rebuilds into.
_TRACE_RECORD_TYPES: dict[str, type] = {
    "task_spans": TaskSpan,
    "reconfigs": ReconfigRecord,
    "lock_waits": LockWaitRecord,
    "cstate_changes": CStateRecord,
    "freq_changes": FreqChangeRecord,
}

#: Record fields added *after* the original schema, dropped from the
#: serialized form while None so pre-existing traces — and the golden
#: SHA-256 fingerprints — stay byte-identical.  Only lists new fields:
#: ReconfigRecord's original nullable fields still serialize as null.
_OMIT_WHEN_NONE: dict[str, tuple[str, ...]] = {
    "task_spans": ("tenant",),
}

#: RunResult fields added with the scenario layer (schema v3); omitted
#: while None for the same byte-stability reason.
_RESULT_OMIT_WHEN_NONE: tuple[str, ...] = (
    "latency_p50_ns",
    "latency_p95_ns",
    "latency_p99_ns",
    "qos_violation_rate",
)


def trace_to_dict(trace: Trace) -> dict[str, Any]:
    """Plain-dict form of a :class:`Trace` (records and counters)."""
    out: dict[str, Any] = {
        "enabled": trace.enabled,
        "tasks_executed": trace.tasks_executed,
        "reconfig_count": trace.reconfig_count,
        "freq_transition_count": trace.freq_transition_count,
        "total_reconfig_latency_ns": trace.total_reconfig_latency_ns,
        "total_lock_wait_ns": trace.total_lock_wait_ns,
        "max_lock_wait_ns": trace.max_lock_wait_ns,
    }
    for name in _TRACE_RECORD_TYPES:
        omit = _OMIT_WHEN_NONE.get(name)
        records = [dataclasses.asdict(rec) for rec in getattr(trace, name)]
        if omit:
            for rec_d in records:
                for key in omit:
                    if rec_d[key] is None:
                        del rec_d[key]
        out[name] = records
    return out


def trace_from_dict(data: dict[str, Any]) -> Trace:
    """Rebuild a :class:`Trace` from :func:`trace_to_dict` output."""
    trace = Trace(enabled=data["enabled"])
    trace.tasks_executed = data["tasks_executed"]
    trace.reconfig_count = data["reconfig_count"]
    trace.freq_transition_count = data["freq_transition_count"]
    trace.total_reconfig_latency_ns = data["total_reconfig_latency_ns"]
    trace.total_lock_wait_ns = data["total_lock_wait_ns"]
    trace.max_lock_wait_ns = data["max_lock_wait_ns"]
    for name, rec_type in _TRACE_RECORD_TYPES.items():
        getattr(trace, name).extend(rec_type(**d) for d in data[name])
    return trace


def result_to_dict(result: "Any") -> dict[str, Any]:
    """Plain-dict form of a :class:`~repro.runtime.system.RunResult`.

    Typed loosely to avoid a circular import (``runtime.system`` imports
    from ``sim``); any object with ``RunResult``'s fields serializes.
    """
    fields = {
        f.name: getattr(result, f.name)
        for f in dataclasses.fields(result)
        if f.name != "trace"
    }
    for name in _RESULT_OMIT_WHEN_NONE:
        if fields.get(name) is None:
            fields.pop(name, None)
    fields["trace"] = trace_to_dict(result.trace)
    return fields


def result_from_dict(data: dict[str, Any]) -> "Any":
    """Rebuild a :class:`~repro.runtime.system.RunResult`."""
    from ..runtime.system import RunResult

    d = dict(data)
    d["trace"] = trace_from_dict(d["trace"])
    return RunResult(**d)


def dump_result(result: "Any", path: str) -> None:
    """Write a :class:`RunResult` to a JSON file."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(result_to_dict(result), fh, sort_keys=True)


def load_result(path: str) -> "Any":
    """Load a :class:`RunResult` from a JSON file."""
    with open(path, encoding="utf-8") as fh:
        return result_from_dict(json.load(fh))


def dump_machine(machine: MachineConfig, path: str) -> None:
    """Write the configuration to a JSON file."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(machine_to_dict(machine), fh, indent=2, sort_keys=True)


def load_machine(path: str) -> MachineConfig:
    """Load a configuration from a JSON file."""
    with open(path, encoding="utf-8") as fh:
        return machine_from_dict(json.load(fh))
