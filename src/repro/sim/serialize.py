"""Machine-configuration serialization.

gem5 experiments live or die by knowing exactly what configuration produced
a result; this module gives the reproduction the same property: a
round-trippable JSON form of :class:`~repro.sim.config.MachineConfig`, used
to stamp experiment outputs and to load swept configurations back.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Any

from .config import (
    CacheConfig,
    CoreUArchConfig,
    DVFSLevel,
    MachineConfig,
    NoCConfig,
    OverheadConfig,
    PowerModelConfig,
)

__all__ = ["machine_to_dict", "machine_from_dict", "dump_machine", "load_machine"]


def machine_to_dict(machine: MachineConfig) -> dict[str, Any]:
    """Plain-dict form of a machine configuration (JSON-safe)."""
    return dataclasses.asdict(machine)


def _level(d: dict[str, Any]) -> DVFSLevel:
    return DVFSLevel(**d)


def _cache(d: dict[str, Any]) -> CacheConfig:
    return CacheConfig(**d)


def machine_from_dict(data: dict[str, Any]) -> MachineConfig:
    """Rebuild a :class:`MachineConfig` from :func:`machine_to_dict` output."""
    uarch_d = dict(data["uarch"])
    uarch_d["l1i"] = _cache(uarch_d["l1i"])
    uarch_d["l1d"] = _cache(uarch_d["l1d"])
    return MachineConfig(
        core_count=data["core_count"],
        fast=_level(data["fast"]),
        slow=_level(data["slow"]),
        uarch=CoreUArchConfig(**uarch_d),
        noc=NoCConfig(**data["noc"]),
        l2_per_core_mb=data["l2_per_core_mb"],
        l2_assoc=data["l2_assoc"],
        l2_hit_cycles=data["l2_hit_cycles"],
        l2_miss_cycles=data["l2_miss_cycles"],
        directory_entries=data["directory_entries"],
        power=PowerModelConfig(**data["power"]),
        overheads=OverheadConfig(**data["overheads"]),
        mem_contention_alpha=data.get("mem_contention_alpha", 0.0),
        mem_contention_threshold=data.get("mem_contention_threshold", 0.5),
    )


def dump_machine(machine: MachineConfig, path: str) -> None:
    """Write the configuration to a JSON file."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(machine_to_dict(machine), fh, indent=2, sort_keys=True)


def load_machine(path: str) -> MachineConfig:
    """Load a configuration from a JSON file."""
    with open(path, encoding="utf-8") as fh:
        return machine_from_dict(json.load(fh))
