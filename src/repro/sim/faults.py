"""Deterministic fault model for the simulated machine.

The paper evaluates CATA on a pristine machine; related work (CuttleSys,
HiDVFS) manages reconfigurable multicores under *degraded* conditions.
This module provides the fault vocabulary for a degradation study: a
:class:`FaultPlan` is an immutable, fully deterministic list of
:class:`FaultEvent`\\ s pinned to simulated timestamps.  Two construction
paths exist:

* an **explicit spec** — ``kind@time[:cN]`` clauses joined by ``;``, e.g.
  ``core_fail@1.5ms:c3;dvfs_stuck@2ms:c1;rsu_off@1ms;rsu_on@3ms``;
* a **chaos spec** — ``chaos:intensity=0.5[,horizon=4ms]`` draws a fault
  mix from a :class:`random.Random` seeded by SHA-256 of the run seed and
  the spec string, so the same ``(seed, spec)`` pair always produces the
  same plan and results stay bitwise-reproducible across processes.

Fault kinds
-----------
``core_fail``
    The core powers off permanently at the given instant (modeled as an
    OS-mediated hot-unplug: a task in flight is aborted and re-enqueued,
    the budget slot is reclaimed, the core parks in C3).  Core 0 may never
    fail — it owns task submission.
``task_abort``
    The task running on the core (if any) is killed and re-enqueued; the
    worker immediately requests new work.
``dvfs_stuck``
    The core's voltage rail can no longer leave the slow level.  Requests
    toward any other level still charge the full 25 µs transition latency
    but settle back at slow.
``rsu_off`` / ``rsu_on``
    The hardware RSU becomes unavailable / available again.  While down,
    RSU-based managers fall back to the software-runtime reconfiguration
    path (global lock + cpufreq writes).

The plan itself holds no mutable state; :class:`repro.runtime.faults
.FaultInjector` arms the events against a live system.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass
from typing import Optional

__all__ = ["FaultEvent", "FaultPlan", "FaultSpecError", "parse_fault_spec"]

FAULT_KINDS = ("core_fail", "task_abort", "dvfs_stuck", "rsu_off", "rsu_on")

#: Kinds that target a specific core (``:cN`` suffix required).
_CORE_KINDS = ("core_fail", "task_abort", "dvfs_stuck")

#: Default chaos horizon when the spec names none: 4 simulated ms covers
#: the active window of every fast-scale workload in the test suite.
_DEFAULT_HORIZON_NS = 4_000_000.0

_TIME_SUFFIXES = (("ns", 1.0), ("us", 1_000.0), ("ms", 1_000_000.0), ("s", 1_000_000_000.0))


class FaultSpecError(ValueError):
    """Raised for malformed or physically impossible fault specs."""


@dataclass(frozen=True, slots=True)
class FaultEvent:
    """One injected fault at a simulated instant."""

    time_ns: float
    kind: str
    core: Optional[int] = None

    def label(self) -> str:
        target = f":c{self.core}" if self.core is not None else ""
        return f"{self.kind}@{self.time_ns:.0f}ns{target}"


@dataclass(frozen=True)
class FaultPlan:
    """An immutable schedule of fault events plus its originating spec."""

    spec: str
    events: tuple[FaultEvent, ...]

    def __len__(self) -> int:
        return len(self.events)


def _parse_time_ns(text: str) -> float:
    """``1.5ms`` / ``200us`` / ``1000`` (bare = ns) -> nanoseconds."""
    raw = text.strip()
    for suffix, mult in _TIME_SUFFIXES:
        if raw.endswith(suffix) and raw != suffix:
            # "ns" also ends with "s"; match the longest suffix first.
            head = raw[: -len(suffix)]
            if head and head[-1] not in "num":  # avoid "5mms"-style typos
                try:
                    value = float(head)
                except ValueError as exc:
                    raise FaultSpecError(f"bad time {text!r}") from exc
                if value < 0:
                    raise FaultSpecError(f"negative time {text!r}")
                return value * mult
    try:
        value = float(raw)
    except ValueError as exc:
        raise FaultSpecError(
            f"bad time {text!r} (expected e.g. 1.5ms, 200us, 1000ns or bare ns)"
        ) from exc
    if value < 0:
        raise FaultSpecError(f"negative time {text!r}")
    return value


def _parse_clause(clause: str, core_count: int) -> FaultEvent:
    head, _, target = clause.partition(":")
    kind, at, time_text = head.partition("@")
    kind = kind.strip()
    if kind not in FAULT_KINDS:
        raise FaultSpecError(
            f"unknown fault kind {kind!r}; expected one of {FAULT_KINDS}"
        )
    if at != "@" or not time_text.strip():
        raise FaultSpecError(f"fault clause {clause!r} needs a @time")
    time_ns = _parse_time_ns(time_text)
    core: Optional[int] = None
    target = target.strip()
    if kind in _CORE_KINDS:
        if not target.startswith("c"):
            raise FaultSpecError(f"{kind} needs a :cN core target, got {clause!r}")
        try:
            core = int(target[1:])
        except ValueError as exc:
            raise FaultSpecError(f"bad core target {target!r}") from exc
        if not (0 <= core < core_count):
            raise FaultSpecError(
                f"core target {core} out of range [0, {core_count})"
            )
        if kind == "core_fail" and core == 0:
            raise FaultSpecError(
                "core 0 owns task submission and may not fail (core_fail@...:c0)"
            )
    elif target:
        raise FaultSpecError(f"{kind} takes no core target, got {clause!r}")
    return FaultEvent(time_ns=time_ns, kind=kind, core=core)


def _chaos_rng(seed: int, spec: str) -> random.Random:
    """Seeded RNG derived from (run seed, spec text) — reproducible anywhere."""
    digest = hashlib.sha256(f"{seed}|{spec}".encode("utf-8")).digest()
    return random.Random(int.from_bytes(digest[:8], "big"))


def _generate_chaos(
    spec: str, seed: int, core_count: int
) -> tuple[FaultEvent, ...]:
    params: dict[str, str] = {}
    body = spec[len("chaos:"):]
    for item in body.split(","):
        item = item.strip()
        if not item:
            continue
        key, eq, value = item.partition("=")
        if eq != "=":
            raise FaultSpecError(f"chaos parameter {item!r} needs key=value")
        params[key.strip()] = value.strip()
    unknown = sorted(set(params) - {"intensity", "horizon"})
    if unknown:
        raise FaultSpecError(f"unknown chaos parameters {unknown}")
    try:
        intensity = float(params.get("intensity", "0.5"))
    except ValueError as exc:
        raise FaultSpecError("chaos intensity must be a number") from exc
    if not (0.0 <= intensity <= 1.0):
        raise FaultSpecError(f"chaos intensity must be in [0, 1], got {intensity}")
    horizon_ns = (
        _parse_time_ns(params["horizon"]) if "horizon" in params else _DEFAULT_HORIZON_NS
    )
    if horizon_ns <= 0:
        raise FaultSpecError("chaos horizon must be positive")
    if intensity == 0.0:
        return ()

    rng = _chaos_rng(seed, spec)

    def draw_time() -> float:
        # Keep faults inside the active window; round to whole ns so the
        # event times serialize identically everywhere.
        return float(round(horizon_ns * (0.1 + 0.8 * rng.random())))

    events: list[FaultEvent] = []
    # Core failures: never core 0, and always leave at least one worker
    # core alive so the run degrades instead of serializing onto core 0.
    max_kills = max(0, core_count - 2)
    kills = min(int(round(2 * intensity)), max_kills)
    victims = rng.sample(range(1, core_count), kills) if kills else []
    for core in victims:
        events.append(FaultEvent(draw_time(), "core_fail", core))
    sticks = int(round(2 * intensity))
    for _ in range(sticks):
        events.append(FaultEvent(draw_time(), "dvfs_stuck", rng.randrange(core_count)))
    aborts = int(round(3 * intensity))
    for _ in range(aborts):
        events.append(FaultEvent(draw_time(), "task_abort", rng.randrange(core_count)))
    if intensity >= 0.5:
        start = float(round(horizon_ns * (0.1 + 0.4 * rng.random())))
        end = float(round(start + horizon_ns * (0.1 + 0.3 * rng.random())))
        events.append(FaultEvent(start, "rsu_off", None))
        events.append(FaultEvent(end, "rsu_on", None))
    return tuple(events)


def parse_fault_spec(
    spec: Optional[str], seed: int, core_count: int
) -> Optional[FaultPlan]:
    """Parse a fault spec string into a :class:`FaultPlan`.

    ``None``, ``""`` and ``"off"`` mean *no faults* and return ``None`` —
    the zero-cost default: no plan, no injector, no per-event overhead.
    """
    if spec is None:
        return None
    text = spec.strip()
    if not text or text == "off":
        return None
    if core_count < 1:
        raise FaultSpecError("core_count must be positive")
    if text.startswith("chaos:") or text == "chaos":
        if text == "chaos":
            text = "chaos:intensity=0.5"
        events = _generate_chaos(text, seed, core_count)
    else:
        events = tuple(
            _parse_clause(clause, core_count)
            for clause in text.split(";")
            if clause.strip()
        )
        if not events:
            raise FaultSpecError(f"fault spec {spec!r} contains no clauses")
    ordered = tuple(
        sorted(events, key=lambda e: (e.time_ns, e.kind, -1 if e.core is None else e.core))
    )
    return FaultPlan(spec=text, events=ordered)
