"""Optional compiled backends for the flat-array kernels.

The two order-sensitive sweeps in :mod:`repro.sim.arrays` — the budgeted
LIFO bottom-level relaxation walk and the energy transition-log replay —
cannot be vectorized with numpy without changing observable quantities
(visit counts, float summation order).  They are, however, trivial C
loops over the flat buffers the kernel layer already maintains.  This
module compiles them at first use with the host C compiler and loads the
shared object via :mod:`ctypes`.

Strictly optional: when no compiler is available (or compilation fails
for any reason) the caller falls back to the pure-Python kernels, which
produce bit-identical results — both backends are pinned against the
reference implementation and the golden fingerprints.  Set
``REPRO_ARRAY_KERNELS=py`` to force the Python kernels even when a
compiler exists (CI pins that path explicitly).

Exactness notes:

* the relaxation walk is integer-only — no portability concerns;
* the energy replay multiplies/divides/accumulates IEEE doubles in
  exactly the order the eager Python accrual would, and is compiled with
  ``-ffp-contract=off`` so the compiler cannot fuse ``a*b/c`` chains
  into FMAs with different rounding.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import subprocess
import sys
import tempfile
from typing import Optional

__all__ = ["load"]

_C_SOURCE = r"""
#include <stdint.h>
#include <stdlib.h>

/* Fused task submission: dependence validation, CSR row append,
 * pending-predecessor count, and the budgeted LIFO bottom-level
 * relaxation walk (bitwise-faithful port of
 * TaskGraph._relax_bottom_levels; see repro/sim/arrays.py for the
 * semantics commentary) — one call per submit instead of a Python
 * add_task/relax pair, because ctypes marshalling per call is what
 * dominates once the walk itself runs at C speed.
 *
 * bufs is the caller's persistent address block:
 *   bufs[0] bl[n]        current bottom levels
 *   bufs[1] fin[n]       1 iff task finished (uint8)
 *   bufs[2] counts[]     histogram over unfinished tasks (capacity > n,
 *                        ensured by the caller, so new_bl cannot
 *                        overflow it)
 *   bufs[3] indptr / bufs[4] indices   CSR predecessor adjacency
 *   bufs[5] stamp[n]     per-task epoch marks (touched-dedup)
 *   bufs[6] touched[n]   out: distinct task ids whose BL changed
 *                        (first-touch order; capacity n suffices
 *                        because of the dedup)
 *   bufs[7] state_io     {max_bl, max_bl_waiting, epoch, n_touched,
 *                        pending}
 * task_id is the new task's id (== current task count), ne the current
 * edge count; budget < 0 means BL tracking is off (append the row,
 * count pending, skip the walk).  Returns edges visited; -3 on an
 * out-of-range dep id (nothing mutated — the caller re-raises the
 * reference error); -1/-2 on allocation failure (the caller raises
 * MemoryError; -2 means the walk already mutated the buffers, but an
 * OOM'd simulation is dead anyway).
 */
int64_t bl_submit(
    int64_t **bufs,
    const int64_t *dep_ids, int64_t n_deps,
    int64_t task_id, int64_t ne, int64_t budget)
{
    int64_t *bl = bufs[0];
    uint8_t *fin = (uint8_t *)bufs[1];
    int64_t *counts = bufs[2];
    int64_t *indptr = bufs[3];
    int64_t *indices = bufs[4];
    int64_t *stamp = bufs[5];
    int64_t *touched = bufs[6];
    int64_t *state_io = bufs[7];

    int64_t pending = 0;
    for (int64_t i = 0; i < n_deps; i++) {
        int64_t d = dep_ids[i];
        if (d < 0 || d >= task_id) return -3;
        /* The reference counts pending per dep *occurrence*. */
        if (!fin[d]) pending++;
    }
    state_io[3] = 0;
    state_io[4] = pending;
    counts[0]++;  /* the new leaf enters the histogram at BL 0 */
    for (int64_t i = 0; i < n_deps; i++) indices[ne + i] = dep_ids[i];
    indptr[task_id + 1] = ne + n_deps;
    if (budget < 0) return 0;  /* BL maintenance skipped: no walk charged */

    int64_t edges = n_deps;
    int64_t n_front = 0;
    for (int64_t i = 0; i < n_deps; i++)
        if (bl[dep_ids[i]] < 1) n_front++;
    if (n_front == 0) return edges;

    /* Frontier stack: every push follows a strict BL increase, so the
     * total pushes across the walk are bounded by sum(bl_final - bl_
     * initial) <= n * max_bl growth; start at a safe size and grow. */
    int64_t cap_stack = n_front + 64;
    int64_t *stack = (int64_t *)malloc((size_t)cap_stack * sizeof(int64_t));
    if (!stack) return -1;

    int64_t max_bl = state_io[0];
    int64_t max_bl_waiting = state_io[1];
    int64_t epoch = state_io[2] + 1;
    int64_t n_touched = 0;
    int64_t top = 0;

    /* Initial frontier: built from all dep occurrences (duplicates
     * included) before any BL moves, exactly like the reference. */
    for (int64_t i = 0; i < n_deps; i++) {
        int64_t d = dep_ids[i];
        if (bl[d] < 1) stack[top++] = d;
    }
    /* First pass mirrors the reference's frontier loop: histogram moves
     * happen per occurrence but duplicates net to zero because bl[d]
     * is updated in the same iteration. */
    for (int64_t i = 0; i < top; i++) {
        int64_t d = stack[i];
        if (!fin[d]) {
            counts[bl[d]]--;
            counts[1]++;
            if (max_bl_waiting < 1) max_bl_waiting = 1;
        }
        bl[d] = 1;
        if (stamp[d] != epoch) {
            stamp[d] = epoch;
            touched[n_touched++] = d;
        }
    }

    while (top > 0) {
        if (edges >= budget) break;
        int64_t nid = stack[--top];
        int64_t nbl = bl[nid];
        if (nbl > max_bl) max_bl = nbl;
        int64_t new_bl = nbl + 1;
        int64_t lo = indptr[nid], hi = indptr[nid + 1];
        edges += hi - lo;
        for (int64_t e = lo; e < hi; e++) {
            int64_t pid = indices[e];
            int64_t pbl = bl[pid];
            if (pbl < new_bl) {
                if (!fin[pid]) {
                    counts[pbl]--;
                    counts[new_bl]++;
                    if (new_bl > max_bl_waiting) max_bl_waiting = new_bl;
                }
                bl[pid] = new_bl;
                if (stamp[pid] != epoch) {
                    stamp[pid] = epoch;
                    touched[n_touched++] = pid;
                }
                if (top == cap_stack) {
                    cap_stack *= 2;
                    int64_t *ns = (int64_t *)realloc(
                        stack, (size_t)cap_stack * sizeof(int64_t));
                    if (!ns) { free(stack); return -2; }
                    stack = ns;
                }
                stack[top++] = pid;
            }
        }
    }
    free(stack);
    state_io[0] = max_bl;
    state_io[1] = max_bl_waiting;
    state_io[2] = epoch;
    state_io[3] = n_touched;
    return edges;
}

/* Energy transition-log replay — the exact additions the eager Python
 * accrual performs at each set_state edge, in append order:
 *   dt = t[i] - last_change[core];  j = cur_power[core] * dt / 1e9;
 *   core_energy[core] += j; bucket_energy[b] += j; bucket_time[b] += dt;
 * then the new (power, bucket) is installed for the core.  Returns the
 * transition index of a negative dt (time went backwards), else -1.
 */
int64_t energy_replay(
    const double *t, const int64_t *core,
    const double *power, const int64_t *bidx, int64_t n,
    double *core_energy, double *last_change,
    double *cur_power, int64_t *cur_bidx, uint8_t *has_state,
    double *bucket_energy, double *bucket_time)
{
    const double SEC = 1e9;
    for (int64_t i = 0; i < n; i++) {
        int64_t c = core[i];
        double now = t[i];
        if (has_state[c]) {
            double dt = now - last_change[c];
            if (dt < 0) return i;
            double j = cur_power[c] * dt / SEC;
            int64_t b = cur_bidx[c];
            core_energy[c] += j;
            bucket_energy[b] += j;
            bucket_time[b] += dt;
        } else {
            has_state[c] = 1;
        }
        last_change[c] = now;
        cur_power[c] = power[i];
        cur_bidx[c] = bidx[i];
    }
    return -1;
}
"""


def _cache_path() -> str:
    tag = hashlib.sha256(_C_SOURCE.encode("utf-8")).hexdigest()[:16]
    impl = f"{sys.implementation.name}-{sys.version_info[0]}.{sys.version_info[1]}"
    return os.path.join(
        tempfile.gettempdir(), f"repro-ckernels-{tag}-{impl}.so"
    )


def _compile(path: str) -> bool:
    """Compile the kernel source to ``path``; atomic, race-tolerant."""
    cc = os.environ.get("CC", "cc")
    fd, src = tempfile.mkstemp(suffix=".c", prefix="repro-ckernels-")
    try:
        with os.fdopen(fd, "w") as f:
            f.write(_C_SOURCE)
        out = src + ".so"
        # -ffp-contract=off: the energy replay must round every multiply
        # and divide exactly as CPython does; FMA fusion would not.
        cmd = [
            cc, "-O2", "-fPIC", "-shared", "-ffp-contract=off",
            src, "-o", out,
        ]
        proc = subprocess.run(
            cmd, capture_output=True, text=True, timeout=120
        )
        if proc.returncode != 0:
            return False
        os.replace(out, path)
        return True
    except (OSError, subprocess.SubprocessError):
        return False
    finally:
        try:
            os.unlink(src)
        except OSError:
            pass


#: Both bindings expose the same calling convention: every pointer
#: parameter is declared as ``int64_t`` and callers pass raw buffer
#: addresses (``array.buffer_info()[0]``) as plain Python ints.  On
#: every supported 64-bit ABI (SysV x86-64, AArch64 AAPCS64) integer
#: and pointer arguments travel in the same registers, so the int
#: declaration is call-compatible with the C prototypes above — and it
#: lets the cffi binding skip per-call pointer-object construction,
#: which is the whole point: the fused submit fires once per task.
_CDEF = """
int64_t bl_submit(int64_t bufs, int64_t dep_ids, int64_t n_deps,
                  int64_t task_id, int64_t ne, int64_t budget);
int64_t energy_replay(int64_t t, int64_t core, int64_t power,
                      int64_t bidx, int64_t n, int64_t core_energy,
                      int64_t last_change, int64_t cur_power,
                      int64_t cur_bidx, int64_t has_state,
                      int64_t bucket_energy, int64_t bucket_time);
"""


def _bind_cffi(path: str):
    """cffi ABI-mode binding — roughly half the per-call overhead of
    ctypes on CPython 3.11, which matters because ``bl_submit`` is
    called once per submitted task."""
    try:
        from cffi import FFI
    except ImportError:
        return None
    try:
        ffi = FFI()
        ffi.cdef(_CDEF)
        return ffi.dlopen(path)
    except Exception:
        return None


def _bind_ctypes(path: str):
    try:
        lib = ctypes.CDLL(path)
    except OSError:
        return None
    i64 = ctypes.c_int64
    for name, n_args in (("bl_submit", 6), ("energy_replay", 12)):
        fn = getattr(lib, name)
        fn.restype = i64
        fn.argtypes = [i64] * n_args
    return lib


_loaded = False
_lib = None


def load():
    """The compiled kernel library, or ``None`` if unavailable.

    Compiled once per machine into a content-addressed file under the
    temp directory, then dlopen'd by every process — a multi-cell worker
    pool pays the compile exactly once (racing compilers both succeed:
    the rename is atomic and the content identical).  Bound through
    cffi when present, ctypes otherwise; both expose ``bl_submit`` /
    ``energy_replay`` taking raw addresses as ints (see ``_CDEF``).
    """
    global _loaded, _lib
    if _loaded:
        return _lib
    _loaded = True
    path = _cache_path()
    try:
        if not os.path.exists(path) and not _compile(path):
            return None
    except OSError:
        return None
    _lib = _bind_cffi(path)
    if _lib is None:
        _lib = _bind_ctypes(path)
    return _lib
