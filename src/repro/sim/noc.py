"""Mesh network-on-chip latency model (Table I: 4×8 mesh, 1-cycle links).

The reproduction does not route individual packets; it needs the *average*
round-trip cost a core pays to reach a remote L2 bank or the directory,
which feeds the per-task memory-time blend in :mod:`repro.sim.memory`.
Banks are NUCA-interleaved by line address, so the expected one-way distance
is the mean Manhattan distance from a core's node to a uniformly random node.
"""

from __future__ import annotations

from functools import lru_cache

from .config import NoCConfig

__all__ = ["manhattan_distance", "mean_distance_from", "mean_pairwise_distance", "hop_latency_cycles"]


def _coords(node: int, cfg: NoCConfig) -> tuple[int, int]:
    if not (0 <= node < cfg.node_count):
        raise ValueError(f"node {node} outside {cfg.rows}x{cfg.cols} mesh")
    return divmod(node, cfg.cols)


def manhattan_distance(a: int, b: int, cfg: NoCConfig) -> int:
    """Hop count between two mesh nodes under XY routing."""
    ra, ca = _coords(a, cfg)
    rb, cb = _coords(b, cfg)
    return abs(ra - rb) + abs(ca - cb)


def mean_distance_from(node: int, cfg: NoCConfig) -> float:
    """Expected hops from ``node`` to a uniformly random destination node."""
    total = sum(manhattan_distance(node, other, cfg) for other in range(cfg.node_count))
    return total / cfg.node_count


@lru_cache(maxsize=None)
def _mean_pairwise(rows: int, cols: int) -> float:
    cfg = NoCConfig(rows=rows, cols=cols)
    n = cfg.node_count
    total = sum(mean_distance_from(node, cfg) for node in range(n))
    return total / n


def mean_pairwise_distance(cfg: NoCConfig) -> float:
    """Expected hops between two uniformly random nodes."""
    return _mean_pairwise(cfg.rows, cfg.cols)


def hop_latency_cycles(hops: float, cfg: NoCConfig) -> float:
    """Latency in uncore cycles for a one-way traversal of ``hops`` hops.

    Each hop is one link traversal plus one router stage (Table I's 1-cycle
    links with single-cycle routers).
    """
    return hops * (cfg.link_cycles + cfg.router_cycles)
