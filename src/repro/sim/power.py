"""Analytic CMOS power model (the McPAT substitute).

The paper evaluates power with McPAT at 22 nm.  For the reproduction we use
the standard first-order CMOS decomposition McPAT itself is built around:

* dynamic power  ``P_dyn = k * f * V^2 * activity``  (charging capacitance),
* leakage power  ``P_leak ~ V``  around the nominal point (linearized
  exponential; the machine only operates between 0.8 V and 1.0 V),
* C-state gating: C0-idle and C1 keep a trickle of clock power; C3
  power-gates the core down to a residual leakage fraction,
* a constant uncore term for the shared L2 banks, directory and NoC.

Only *relative* energy matters for the paper's EDP figures (everything is
normalized to the FIFO baseline), so the absolute calibration constant is
documented but not load-bearing.
"""

from __future__ import annotations

from dataclasses import dataclass

from .config import DVFSLevel, MachineConfig, PowerModelConfig

__all__ = ["CoreState", "PowerModel", "core_power_w"]


@dataclass(frozen=True)
class CoreState:
    """The instantaneous power-relevant state of one core."""

    level: DVFSLevel
    cstate: str  # "C0" | "C1" | "C3"
    #: Activity factor in [0, 1]; meaningful only in C0 while busy.
    activity: float
    busy: bool

    def __post_init__(self) -> None:
        if self.cstate not in ("C0", "C1", "C3"):
            raise ValueError(f"unknown C-state {self.cstate!r}")
        if not (0.0 <= self.activity <= 1.0):
            raise ValueError(f"activity must be in [0,1], got {self.activity}")


class PowerModel:
    """Maps :class:`CoreState` to instantaneous power in watts."""

    def __init__(self, config: PowerModelConfig) -> None:
        self._cfg = config

    @property
    def config(self) -> PowerModelConfig:
        return self._cfg

    def dynamic_w(self, level: DVFSLevel, activity: float) -> float:
        """Switching power at an operating point with a given activity."""
        c = self._cfg
        return c.dyn_w_per_ghz_v2 * level.freq_ghz * level.voltage_v**2 * activity

    def leakage_w(self, level: DVFSLevel) -> float:
        """Leakage power at an operating point (linear in V)."""
        c = self._cfg
        return c.leak_w_at_nominal * (level.voltage_v / c.nominal_voltage_v)

    def core_w(self, state: CoreState) -> float:
        """Total power of one core in the given state."""
        c = self._cfg
        if state.cstate == "C3":
            # Power-gated: no clock, residual (un-gateable) leakage only.
            return self.leakage_w(state.level) * c.c3_leak_fraction
        if state.cstate == "C1":
            activity = c.idle_c1_activity
        elif state.busy:
            activity = state.activity
        else:  # C0 but idle (spinning in the runtime idle loop)
            activity = c.idle_c0_activity
        return self.dynamic_w(state.level, activity) + self.leakage_w(state.level)

    def uncore_w(self) -> float:
        """Constant shared-resource power (L2 banks, directory, NoC)."""
        return self._cfg.uncore_w

    def chip_peak_w(self, machine: MachineConfig) -> float:
        """Peak chip power: all cores busy at the fast level, activity 1."""
        per_core = self.core_w(
            CoreState(level=machine.fast, cstate="C0", activity=1.0, busy=True)
        )
        return per_core * machine.core_count + self.uncore_w()


def core_power_w(config: PowerModelConfig, state: CoreState) -> float:
    """Convenience functional entry point (used by property tests)."""
    return PowerModel(config).core_w(state)
