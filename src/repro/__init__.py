"""repro — reproduction of *CATA: Criticality Aware Task Acceleration for
Multicore Processors* (Castillo et al., IPDPS 2016).

Layering (bottom-up):

* :mod:`repro.sim` — deterministic discrete-event multicore/DVFS simulator
  (the gem5/McPAT substitute),
* :mod:`repro.runtime` — task-based runtime (the Nanos++ substitute):
  TDG, criticality estimation, schedulers, workers,
* :mod:`repro.core` — the paper's mechanisms: CATA (software), the RSU
  (hardware), TurboMode, and the policy registry,
* :mod:`repro.workloads` — PARSECSs-shaped synthetic task programs,
* :mod:`repro.analysis` — metrics (speedup, EDP), aggregation, reporting,
* :mod:`repro.hw` — RSU area/power overhead estimation (CACTI substitute),
* :mod:`repro.harness` — experiment drivers regenerating each table/figure.

Quickstart::

    from repro import build_program, run_policy
    fifo = run_policy(build_program("swaptions"), "fifo", fast_cores=8)
    cata = run_policy(build_program("swaptions"), "cata", fast_cores=8)
    print(fifo.exec_time_ns / cata.exec_time_ns)  # speedup over FIFO
"""

from .core import POLICIES, build_system, run_policy
from .runtime import Program, RunResult, RuntimeSystem, TaskType
from .sim import MachineConfig, default_machine
from .workloads import BENCHMARKS, build_program

__version__ = "1.0.0"

__all__ = [
    "POLICIES",
    "BENCHMARKS",
    "build_system",
    "run_policy",
    "build_program",
    "Program",
    "RunResult",
    "RuntimeSystem",
    "TaskType",
    "MachineConfig",
    "default_machine",
    "__version__",
]
