"""Command-line interface.

``python -m repro <command>`` drives everything a user needs without
writing code:

=============  =============================================================
``list``       available benchmarks and policies
``characterize``  structural statistics of the benchmark suite
``table1``     print Table I (the simulated machine)
``run``        simulate one benchmark under one policy; optional timeline,
               energy breakdown, Chrome-trace export and fault injection
``sweep``      compare policies across power budgets on one benchmark
``latency``    tail latency / QoS under open-loop multi-tenant arrivals
``degradation``  policy slowdown under deterministic chaos fault ladders
``figure4``    regenerate Figure 4 (speedup + EDP panels, shape checks)
``figure5``    regenerate Figure 5
``section5c``  reconfiguration/lock statistics (Section V-C)
``rsu``        RSU area/power overhead (Section III-B.4)
``perf``       simulator performance benchmarks; appends a run record to
               ``BENCH_history.jsonl``, ``--check`` gates on regressions
               vs the committed baselines, ``--update`` rewrites them
``check``      unified static analysis (lint + TDG) with SARIF output
``lint``       AST determinism linter over the source tree
``analyze-tdg``  static race/deadlock analysis of workload task graphs
``serve``      persistent sweep daemon (HTTP/JSON job queue over the
               resumable executor); see ``docs/service.md``
``submit``     submit a sweep grid to a running daemon
``status``     progress of a submitted job (``--wait`` long-polls)
``fetch``      results of a finished job, with SHA-256 fingerprints
``drain``      gracefully drain a running daemon (stop admissions, finish
               in-flight work, checkpoint, exit)
=============  =============================================================

``run --sanitize`` attaches the sim-sanitizer (runtime invariant checks,
byte-identical output); see ``docs/static-analysis.md``.  ``run --faults``
injects deterministic machine faults (``core_fail@1.5ms:c3;...`` or
``chaos:intensity=0.5``); see ``docs/robustness.md``.

The sweep-backed commands (``sweep``/``figure4``/``figure5``/
``experiments``) accept ``--jobs N`` to fan independent grid cells across
worker processes (bitwise-identical results), ``--cache-dir PATH`` for a
persistent on-disk result cache, and ``--verbose`` for per-cell timing and
cache hit/miss reporting; see ``docs/parallel.md``.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from .analysis import render_table, render_timeline
from .analysis.export import export_chrome_trace
from .core.policies import EXTRA_POLICIES, POLICIES, build_system, run_policy
from .harness import (
    GridRunner,
    render_rsu_overhead,
    render_section5c,
    render_table1,
    run_figure4,
    run_figure5,
    run_rsu_overhead,
    run_section5c,
)
from .workloads import BENCHMARKS, build_program, characterization_rows, characterize

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'CATA: Criticality Aware Task "
        "Acceleration for Multicore Processors' (IPDPS 2016)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_list = sub.add_parser("list", help="list benchmarks and policies")
    p_list.add_argument("--json", action="store_true",
                        help="machine-readable JSON: benchmarks, policies, "
                        "arrival kinds and experiments")
    sub.add_parser("table1", help="print Table I (machine configuration)")

    p_run = sub.add_parser("run", help="simulate one benchmark under one policy")
    p_run.add_argument("benchmark", choices=sorted(BENCHMARKS))
    p_run.add_argument("--policy", default="cata", choices=POLICIES + EXTRA_POLICIES)
    p_run.add_argument("--fast", type=int, default=8, help="fast cores / budget")
    p_run.add_argument("--scale", type=float, default=0.5)
    p_run.add_argument("--seed", type=int, default=1)
    p_run.add_argument("--baseline", action="store_true",
                       help="also run FIFO and report speedup / normalized EDP")
    p_run.add_argument("--sanitize", action="store_true",
                       help="enable runtime invariant checks (sim-sanitizer); "
                       "output is unchanged, violations raise")
    p_run.add_argument("--faults", default="off", metavar="SPEC",
                       help="deterministic fault injection: 'kind@time:cN' "
                       "clauses joined by ';' (core_fail/task_abort/"
                       "dvfs_stuck/rsu_off/rsu_on) or "
                       "'chaos:intensity=0.5[,horizon=4ms]'; default off")
    p_run.add_argument("--timeline", action="store_true",
                       help="print an ASCII core-by-time timeline")
    p_run.add_argument("--breakdown", action="store_true",
                       help="print the per-state energy breakdown")
    p_run.add_argument("--export-trace", metavar="FILE",
                       help="write a Chrome/Perfetto trace JSON")
    p_run.add_argument("--export-paraver", metavar="BASENAME",
                       help="write Paraver .prv/.pcf trace files")
    p_run.add_argument("--arrivals", default=None, metavar="SPEC",
                       help="open-loop admission: run the benchmark as one "
                       "tenant under this arrival spec, e.g. "
                       "'poisson(rate=0.5,jobs=4)' or "
                       "'mmpp(rate=0.4,burst=8,dwell=2,jobs=4)'")
    p_run.add_argument("--tenants", default=None, metavar="SPEC",
                       help="full multi-tenant scenario "
                       "('[name:]bench@kind(...)[@qos=12ms]' joined by '+'); "
                       "overrides the benchmark argument")

    def positive_int(text: str) -> int:
        value = int(text)
        if value < 1:
            raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
        return value

    def add_executor_flags(p: argparse.ArgumentParser) -> None:
        p.add_argument("--jobs", type=positive_int, default=1, metavar="N",
                       help="worker processes for independent grid cells "
                       "(results are identical to --jobs 1)")
        p.add_argument("--cache-dir", metavar="PATH", default=None,
                       help="persistent on-disk result cache directory")
        p.add_argument("--batch-cells", type=positive_int, default=1,
                       metavar="N",
                       help="cells simulated back-to-back per worker task on "
                       "shared kernel buffers; amortizes per-cell setup, "
                       "results are identical to --batch-cells 1")
        p.add_argument("--verbose", action="store_true",
                       help="per-cell timing and cache hit/miss reporting")

    def add_resilience_flags(p: argparse.ArgumentParser) -> None:
        p.add_argument("--retries", type=positive_int, default=3, metavar="N",
                       help="attempts per cell before giving up "
                       "(crashed/timed-out cells are re-dispatched)")
        p.add_argument("--cell-timeout", type=float, default=None, metavar="SEC",
                       help="per-cell wall-clock limit in seconds; a stuck "
                       "worker pool is torn down and rebuilt")

    p_sweep = sub.add_parser("sweep", help="compare policies across budgets")
    p_sweep.add_argument("benchmark", choices=sorted(BENCHMARKS))
    p_sweep.add_argument("--policies", nargs="+", default=["cats_sa", "cata", "cata_rsu"],
                         choices=POLICIES + EXTRA_POLICIES)
    p_sweep.add_argument("--budgets", nargs="+", type=int, default=[8, 16, 24])
    p_sweep.add_argument("--scale", type=float, default=0.5)
    p_sweep.add_argument("--seed", type=int, default=1)
    p_sweep.add_argument("--faults", default="off", metavar="SPEC",
                         help="fault spec applied to every cell (see run "
                         "--faults); changes the cache key")
    p_sweep.add_argument("--arrivals", default=None, metavar="SPEC",
                         help="open-loop admission for every cell (see run "
                         "--arrivals); changes the cache key")
    p_sweep.add_argument("--tenants", default=None, metavar="SPEC",
                         help="multi-tenant scenario pinned for every cell "
                         "(the benchmark becomes a display label)")
    add_executor_flags(p_sweep)
    add_resilience_flags(p_sweep)

    p_lat = sub.add_parser(
        "latency", help="tail latency / QoS under open-loop arrivals"
    )
    p_lat.add_argument("--tenants", default=None, metavar="SPEC",
                       help="multi-tenant scenario spec (default: the "
                       "two-tenant web+batch study scenario)")
    p_lat.add_argument("--policies", nargs="+", default=None,
                       choices=POLICIES + EXTRA_POLICIES,
                       help="default: fifo cats_sa cata cata_rsu")
    p_lat.add_argument("--intensities", nargs="+", type=float, default=None,
                       help="arrival-rate multipliers (default: 0.5 1.0 2.0)")
    p_lat.add_argument("--fast", type=int, default=8)
    p_lat.add_argument("--seed", type=int, default=1)
    p_lat.add_argument("--scale", type=float, default=0.3)
    p_lat.add_argument("--smoke", action="store_true",
                       help="tiny scenario, two policies, one intensity "
                       "(CI mode)")
    p_lat.add_argument("--csv", metavar="FILE", default=None,
                       help="also write the study rows as CSV")
    add_executor_flags(p_lat)
    add_resilience_flags(p_lat)

    for name, help_text in (
        ("figure4", "regenerate Figure 4"),
        ("figure5", "regenerate Figure 5"),
    ):
        p_fig = sub.add_parser(name, help=help_text)
        p_fig.add_argument("--scale", type=float, default=1.0)
        p_fig.add_argument("--seeds", nargs="+", type=int, default=[1, 2, 3])
        p_fig.add_argument("--fast", nargs="+", type=int, default=[8, 16, 24])
        p_fig.add_argument("--csv", metavar="FILE", default=None,
                           help="also write the figure points as CSV")
        add_executor_flags(p_fig)
        add_resilience_flags(p_fig)

    p_deg = sub.add_parser(
        "degradation", help="policy slowdown under injected machine faults"
    )
    p_deg.add_argument("--workloads", nargs="+", default=None,
                       choices=sorted(BENCHMARKS),
                       help="default: swaptions fluidanimate")
    p_deg.add_argument("--policies", nargs="+", default=None,
                       choices=POLICIES + EXTRA_POLICIES,
                       help="default: fifo cats_sa turbomode cata cata_rsu")
    p_deg.add_argument("--intensities", nargs="+", type=float, default=None,
                       help="chaos intensity ladder (default: 0 0.25 0.5 1.0)")
    p_deg.add_argument("--fast", type=int, default=8)
    p_deg.add_argument("--scale", type=float, default=0.3)
    p_deg.add_argument("--seed", type=int, default=1)
    p_deg.add_argument("--csv", metavar="FILE", default=None,
                       help="also write the study rows as CSV")
    add_executor_flags(p_deg)

    p_5c = sub.add_parser("section5c", help="Section V-C reconfiguration statistics")
    p_5c.add_argument("--scale", type=float, default=1.0)
    p_5c.add_argument("--fast", type=int, default=16)

    p_char = sub.add_parser(
        "characterize", help="structural statistics of the benchmark suite"
    )
    p_char.add_argument("--scale", type=float, default=1.0)
    p_char.add_argument("--seed", type=int, default=1)

    p_exp = sub.add_parser(
        "experiments", help="list reproducible artifacts, or run one by id"
    )
    p_exp.add_argument("exp_id", nargs="?", help="experiment id to run")
    p_exp.add_argument("--scale", type=float, default=1.0)
    p_exp.add_argument("--seeds", nargs="+", type=int, default=[1, 2, 3])
    add_executor_flags(p_exp)

    from .service.client import DEFAULT_URL
    from .service.protocol import DEFAULT_CLIENT, DEFAULT_HOST, DEFAULT_PORT

    p_serve = sub.add_parser(
        "serve", help="run the persistent sweep service daemon"
    )
    p_serve.add_argument("--host", default=DEFAULT_HOST)
    p_serve.add_argument("--port", type=int, default=DEFAULT_PORT,
                         help=f"TCP port (default {DEFAULT_PORT}; 0 picks a "
                         "free one, announced on stdout and in "
                         "<state-dir>/endpoint.json)")
    p_serve.add_argument("--state-dir", default=".repro-service",
                         metavar="PATH",
                         help="result cache, journal and job log; the daemon "
                         "resumes everything in here after a restart")
    p_serve.add_argument("--jobs", type=positive_int, default=1, metavar="N",
                         help="worker processes of the simulation tier")
    p_serve.add_argument("--default-share", type=positive_int, default=2,
                         metavar="N",
                         help="concurrency share of unconfigured clients")
    p_serve.add_argument("--share", action="append", default=[],
                         metavar="CLIENT=N",
                         help="per-client concurrency share (repeatable)")
    p_serve.add_argument("--verbose", action="store_true",
                         help="per-cell executor logging")
    p_serve.add_argument("--max-queue", type=positive_int, default=512,
                         metavar="N",
                         help="soft queue-depth bound: past it, "
                         "low-criticality submissions are shed (429)")
    p_serve.add_argument("--hard-queue", type=positive_int, default=2048,
                         metavar="N",
                         help="hard queue-depth ceiling: past it, every "
                         "submission is shed regardless of criticality")
    p_serve.add_argument("--max-inflight", type=positive_int, default=4096,
                         metavar="N",
                         help="per-client cap on unresolved cells")
    p_serve.add_argument("--shed-seed", type=int, default=0, metavar="SEED",
                         help="seed of the deterministic shed decision")
    p_serve.add_argument("--drain-grace", type=float, default=30.0,
                         metavar="SEC",
                         help="graceful-drain deadline for SIGTERM / "
                         "POST /v1/admin/drain")
    p_serve.add_argument("--hang-timeout", type=float, default=None,
                         metavar="SEC",
                         help="watchdog: abandon + rebuild a busy worker "
                         "whose heartbeat is staler than SEC (default: "
                         "disabled)")
    add_resilience_flags(p_serve)

    p_submit = sub.add_parser(
        "submit", help="submit a sweep grid to a running daemon"
    )
    p_submit.add_argument("benchmarks", nargs="+", choices=sorted(BENCHMARKS))
    p_submit.add_argument("--policies", nargs="+",
                          default=["cats_sa", "cata", "cata_rsu"],
                          choices=POLICIES + EXTRA_POLICIES)
    p_submit.add_argument("--budgets", nargs="+", type=int, default=[8, 16, 24])
    p_submit.add_argument("--seeds", nargs="+", type=int, default=[1])
    p_submit.add_argument("--scale", type=float, default=0.5)
    p_submit.add_argument("--faults", default="off", metavar="SPEC")
    p_submit.add_argument("--url", default=DEFAULT_URL,
                          help="daemon base URL")
    p_submit.add_argument("--client", default=DEFAULT_CLIENT,
                          help="client name for fairness accounting")
    p_submit.add_argument("--criticality", choices=["low", "high"],
                          default=None,
                          help="admission criticality under overload "
                          "(default: derived — qos-bounded scenario cells "
                          "are high, everything else low)")
    p_submit.add_argument("--submit-retries", type=positive_int, default=5,
                          metavar="N",
                          help="client attempts per request (backoff is "
                          "jittered-exponential, honoring Retry-After)")
    p_submit.add_argument("--wait", action="store_true",
                          help="block until the job settles, then print the "
                          "results table")
    p_submit.add_argument("--timeout", type=float, default=3600.0,
                          metavar="SEC", help="--wait deadline")

    p_status = sub.add_parser("status", help="progress of a submitted job")
    p_status.add_argument("job", help="job id from `repro submit`")
    p_status.add_argument("--url", default=DEFAULT_URL)
    p_status.add_argument("--detail", action="store_true",
                          help="per-cell states")
    p_status.add_argument("--wait", type=float, default=0.0, metavar="SEC",
                          help="long-poll until the job settles or SEC passes")

    p_fetch = sub.add_parser(
        "fetch", help="results of a finished job (with fingerprints)"
    )
    p_fetch.add_argument("job", help="job id from `repro submit`")
    p_fetch.add_argument("--url", default=DEFAULT_URL)
    p_fetch.add_argument("--json", metavar="FILE", default=None,
                         help="also dump the full response as JSON")

    p_drain = sub.add_parser(
        "drain", help="gracefully drain a running daemon (stop admissions, "
        "finish in-flight work, exit)"
    )
    p_drain.add_argument("--url", default=DEFAULT_URL)

    p_rsu = sub.add_parser("rsu", help="RSU area/power overhead")
    p_rsu.add_argument("--cores", nargs="+", type=int, default=[32, 64, 128, 256, 1024])

    p_perf = sub.add_parser(
        "perf", help="simulator performance benchmarks + regression check"
    )
    p_perf.add_argument("--smoke", action="store_true",
                        help="best-of-2 instead of best-of-3 per scenario "
                        "(CI mode)")
    p_perf.add_argument("--check", action="store_true",
                        help="compare against the committed BENCH_*.json "
                        "baselines; exit 1 on regression")
    p_perf.add_argument("--out-dir", default=".", metavar="DIR",
                        help="directory for BENCH_engine.json / "
                        "BENCH_sweep.json (default: current directory)")
    p_perf.add_argument("--threshold", type=float, default=None, metavar="FRAC",
                        help="regression threshold as a fraction "
                        "(default: 0.30)")
    p_perf.add_argument("--update", action="store_true",
                        help="rewrite the BENCH_*.json baselines with this "
                        "run's numbers (default: measure + append history "
                        "only, baselines untouched)")
    p_perf.add_argument("--only", nargs="+", metavar="SCENARIO",
                        help="run (and check) only the named scenarios; "
                        "incompatible with --update")
    p_perf.add_argument("--history-limit", type=positive_int, default=None,
                        metavar="N",
                        help="after appending this run, prune each "
                        "BENCH_history.jsonl to its newest N records")

    # Delegated subcommands: main() hands the remaining argv to the
    # analysis drivers before this parser ever runs, so these entries only
    # exist for `repro --help` discoverability.
    sub.add_parser("check",
                   help="unified static analysis: lint rule families + TDG "
                   "checks, text/json/sarif output (repro check --help)",
                   add_help=False)
    sub.add_parser("lint", help="AST determinism linter (repro lint --help)",
                   add_help=False)
    sub.add_parser("analyze-tdg",
                   help="static TDG race/deadlock analysis "
                   "(repro analyze-tdg --help)",
                   add_help=False)

    return parser


def _cmd_list() -> str:
    from .workloads.scenario import ARRIVAL_KINDS

    lines = ["benchmarks:"]
    lines += [f"  {name}" for name in sorted(BENCHMARKS)]
    lines.append("policies (paper):")
    lines += [f"  {p}" for p in POLICIES]
    lines.append("policies (extensions):")
    lines += [f"  {p}" for p in EXTRA_POLICIES]
    lines.append("arrival kinds (run/sweep --arrivals, latency --tenants):")
    for kind in sorted(ARRIVAL_KINDS):
        lines.append(f"  {kind}: {ARRIVAL_KINDS[kind]['description']}")
    return "\n".join(lines)


def _cmd_list_json() -> str:
    import json as _json

    from .harness import list_experiments
    from .workloads.scenario import ARRIVAL_KINDS

    payload = {
        "benchmarks": sorted(BENCHMARKS),
        "policies": {"paper": list(POLICIES), "extensions": list(EXTRA_POLICIES)},
        "arrival_kinds": {
            kind: {
                "description": meta["description"],
                # None marks a required parameter; others show defaults.
                "params": meta["params"],
            }
            for kind, meta in ARRIVAL_KINDS.items()
        },
        "experiments": [
            {
                "id": e.exp_id,
                "artifact": e.paper_artifact,
                "description": e.description,
            }
            for e in list_experiments()
        ],
    }
    return _json.dumps(payload, indent=2, sort_keys=True)


def _cmd_run_scenario(args: argparse.Namespace) -> str:
    from .core.policies import run_scenario_policy
    from .workloads.scenario import parse_scenario

    spec = (
        args.tenants
        if args.tenants is not None
        else f"{args.benchmark}@{args.arrivals}"
    )
    scn = parse_scenario(spec)
    result = run_scenario_policy(
        scn,
        args.policy,
        fast_cores=args.fast,
        seed=args.seed,
        scale=args.scale,
        sanitize=args.sanitize,
        faults=args.faults,
    )
    summary = result.extra.get("scenario", {})
    lines = [
        f"{scn.label()} under {args.policy} @ {args.fast} fast cores "
        f"(scale {args.scale}, seed {args.seed})",
        f"  scenario:         {scn.canonical()}",
        f"  jobs admitted:    {summary.get('jobs', 0)}",
        f"  tasks executed:   {result.tasks_executed}",
        f"  makespan:         {result.exec_time_ns / 1e6:.3f} ms",
        f"  energy:           {result.energy_j:.4f} J",
        "  latency p50/p95/p99: "
        f"{(result.latency_p50_ns or 0.0) / 1e6:.3f} / "
        f"{(result.latency_p95_ns or 0.0) / 1e6:.3f} / "
        f"{(result.latency_p99_ns or 0.0) / 1e6:.3f} ms",
        f"  QoS violations:   {result.qos_violation_rate or 0.0:.2%} of jobs",
    ]
    for name, stats in summary.get("tenants", {}).items():
        parts = [
            f"jobs {stats['jobs']}",
            f"p99 {stats['latency_p99_ns'] / 1e6:.3f} ms",
        ]
        if "qos_violations" in stats:
            parts.append(f"QoS misses {stats['qos_violations']}")
        if "accel_grants" in stats:
            parts.append(f"accel grants {stats['accel_grants']}")
        lines.append(f"    tenant {name}: " + ", ".join(parts))
    if args.timeline:
        lines.append(render_timeline(result.trace, width=100))
    if args.export_trace:
        n = export_chrome_trace(result.trace, args.export_trace)
        lines.append(f"  wrote {n} trace events to {args.export_trace}")
    return "\n".join(lines)


def _cmd_run(args: argparse.Namespace) -> str:
    if args.arrivals is not None and args.tenants is not None:
        raise SystemExit("pass either --arrivals or --tenants, not both")
    if args.arrivals is not None or args.tenants is not None:
        return _cmd_run_scenario(args)
    system = build_system(
        build_program(args.benchmark, scale=args.scale, seed=args.seed),
        args.policy,
        fast_cores=args.fast,
        seed=args.seed,
        sanitize=args.sanitize,
        faults=args.faults,
    )
    result = system.run()
    lines = [
        f"{args.benchmark} under {args.policy} @ {args.fast} fast cores "
        f"(scale {args.scale}, seed {args.seed})",
        f"  tasks executed:   {result.tasks_executed}",
        f"  execution time:   {result.exec_time_ns / 1e6:.3f} ms",
        f"  energy:           {result.energy_j:.4f} J",
        f"  EDP:              {result.edp:.6e} J*s",
        f"  reconfigurations: {result.reconfig_count} "
        f"(avg latency {result.avg_reconfig_latency_ns / 1e3:.1f} us, "
        f"{result.cpufreq_writes} cpufreq writes)",
    ]
    faults = result.extra.get("faults")
    if faults is not None:
        lines.append(
            f"  faults:           {faults['events']} injected "
            f"({faults['cores_failed']} cores failed, "
            f"{faults['tasks_aborted']} tasks aborted, "
            f"{faults['rails_stuck']} rails stuck, "
            f"{faults['rsu_outages']} RSU outages; "
            f"{faults['tasks_requeued']} tasks requeued)"
        )
    if system.sanitizer is not None:
        lines.append(f"  {system.sanitizer.render_summary()}")
    if args.baseline:
        fifo = run_policy(
            build_program(args.benchmark, scale=args.scale, seed=args.seed),
            "fifo",
            fast_cores=args.fast,
            seed=args.seed,
        )
        lines.append(
            f"  speedup over FIFO: {fifo.exec_time_ns / result.exec_time_ns:.3f}"
        )
        lines.append(f"  normalized EDP:    {result.edp / fifo.edp:.3f}")
    if args.breakdown:
        bd = result.extra["energy_breakdown_j"]
        total = sum(bd.values())
        lines.append("  energy breakdown:")
        for bucket, joules in bd.items():
            lines.append(
                f"    {bucket:<10} {joules:8.4f} J  ({100 * joules / total:5.1f}%)"
            )
    if args.timeline:
        lines.append(render_timeline(result.trace, width=100))
    if args.export_trace:
        n = export_chrome_trace(result.trace, args.export_trace)
        lines.append(f"  wrote {n} trace events to {args.export_trace}")
    if args.export_paraver:
        from .analysis.paraver import export_paraver

        prv, pcf = export_paraver(result.trace, args.export_paraver)
        lines.append(f"  wrote Paraver trace to {prv} / {pcf}")
    return "\n".join(lines)


def _retry_from_args(args: argparse.Namespace):
    from .harness import RetryPolicy

    if args.retries == 3 and args.cell_timeout is None:
        return None
    return RetryPolicy(max_attempts=args.retries, cell_timeout_s=args.cell_timeout)


def _cmd_sweep(args: argparse.Namespace) -> str:
    runner = GridRunner(
        scale=args.scale,
        seed=args.seed,
        jobs=args.jobs,
        cache_dir=args.cache_dir,
        verbose=args.verbose,
        faults=args.faults,
        retry=_retry_from_args(args),
        batch_cells=args.batch_cells,
        arrivals=args.arrivals,
        tenants=args.tenants,
    )
    grid = runner.run_grid(
        args.policies, workloads=[args.benchmark], fast_counts=args.budgets
    )
    rows: list[list[object]] = []
    for budget in args.budgets:
        row: list[object] = [budget]
        for policy in args.policies:
            row.append(grid.point(args.benchmark, policy, budget).speedup)
        rows.append(row)
    table = render_table(
        ["budget"] + [f"{p}" for p in args.policies],
        rows,
        title=f"speedup over FIFO on {args.benchmark} (scale {args.scale})",
    )
    return table + "\n" + grid.stats.summary()


def _cmd_serve(args: argparse.Namespace) -> int:
    from .service.overload import OverloadPolicy
    from .service.server import serve

    shares: dict[str, int] = {}
    for item in args.share:
        name, sep, value = item.partition("=")
        if not sep or not name or not value.isdigit() or int(value) < 1:
            raise SystemExit(
                f"--share expects CLIENT=N with N >= 1, got {item!r}"
            )
        shares[name] = int(value)
    try:
        overload = OverloadPolicy(
            max_queue_depth=args.max_queue,
            hard_queue_depth=args.hard_queue,
            max_inflight_per_client=args.max_inflight,
            shed_seed=args.shed_seed,
        )
    except ValueError as exc:
        raise SystemExit(f"bad overload policy: {exc}") from exc
    return serve(
        args.state_dir,
        host=args.host,
        port=args.port,
        jobs=args.jobs,
        retry=_retry_from_args(args),
        shares=shares or None,
        default_share=args.default_share,
        overload=overload,
        drain_grace_s=args.drain_grace,
        worker_hang_timeout_s=args.hang_timeout,
        verbose=args.verbose,
    )


def _render_job_status(status: dict) -> str:
    lines = [
        f"job {status['job']} ({status['client']}): {status['state']} — "
        f"{status['done']}/{status['unique']} cells done, "
        f"{status['running']} running, {status['pending']} pending, "
        f"{status['failed']} failed",
        f"  cached: {status['cached']}  simulated: {status['simulated']}  "
        f"attached: {status['attached']}  deduped: {status['deduped']}  "
        f"resumed: {status['resumed']}",
    ]
    for row in status.get("detail", []):
        src = "cache" if row["from_cache"] else "sim"
        extra = f"  [{row['error']}]" if row["error"] else ""
        lines.append(
            f"    {row['state']:<8} {row['label']:<40} "
            f"{row['seconds']:8.3f}s  {src}{extra}"
        )
    return "\n".join(lines)


def _render_fetch(payload: dict) -> str:
    from .analysis import render_table as _table

    rows = []
    for item in payload["results"]:
        result = item["result"]
        edp = result["energy_j"] * result["exec_time_ns"] / 1e9
        rows.append(
            [
                item["label"],
                f"{result['exec_time_ns'] / 1e6:.3f}",
                f"{result['energy_j']:.4f}",
                f"{edp:.4e}",
                "cache" if item["from_cache"] else "sim",
                item["fingerprint"][:12],
            ]
        )
    table = _table(
        ["cell", "exec ms", "energy J", "EDP J*s", "source", "sha256[:12]"],
        rows,
        title=f"job {payload['job']} results",
    )
    return (
        table
        + f"\ncells: {payload['cells']}  cached: {payload['cached']}  "
        f"simulated: {payload['simulated']}  resumed: {payload['resumed']}"
    )


def _cmd_submit(args: argparse.Namespace) -> int:
    from .service.client import ClientRetryPolicy, ServiceClient

    client = ServiceClient(
        args.url,
        retry=ClientRetryPolicy(max_attempts=args.submit_retries),
    )
    receipt = client.submit(
        workloads=list(args.benchmarks),
        policies=list(args.policies),
        budgets=list(args.budgets),
        seeds=list(args.seeds),
        scale=args.scale,
        faults=args.faults,
        client=args.client,
        criticality=args.criticality,
    )
    print(
        f"job {receipt['job']} accepted: {receipt['cells']} cells "
        f"({receipt['cached']} already cached, {receipt['attached']} "
        f"in flight elsewhere, {receipt['pending']} queued)"
    )
    if not args.wait:
        print(f"poll with: repro status {receipt['job']} --url {client.url}")
        return 0
    status = client.wait(receipt["job"], timeout_s=args.timeout)
    if status.get("state") != "done":
        print(_render_job_status(client.status(receipt["job"], detail=True)))
        return 1
    print(_render_fetch(client.fetch(receipt["job"])))
    return 0


def _cmd_status(args: argparse.Namespace) -> int:
    from .service.client import ServiceClient

    client = ServiceClient(args.url)
    status = (
        client.status(args.job, wait_s=args.wait)
        if args.wait > 0
        else client.status(args.job, detail=args.detail)
    )
    if args.wait > 0 and args.detail:
        status = client.status(args.job, detail=True)
    print(_render_job_status(status))
    return 0 if status["state"] != "failed" else 1


def _cmd_fetch(args: argparse.Namespace) -> int:
    import json as _json

    from .service.client import ServiceClient

    client = ServiceClient(args.url)
    payload = client.fetch(args.job)
    print(_render_fetch(payload))
    if args.json:
        with open(args.json, "w", encoding="utf-8") as fh:
            _json.dump(payload, fh, sort_keys=True)
        print(f"wrote full response to {args.json}")
    return 0


def _cmd_drain(args: argparse.Namespace) -> int:
    from .service.client import ServiceClient

    client = ServiceClient(args.url)
    summary = client.drain()
    print(
        f"daemon draining: {summary.get('running', 0)} cells running, "
        f"{summary.get('queued', 0)} queued (queued work resumes on the "
        "next start)"
    )
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    raw = list(sys.argv[1:] if argv is None else argv)
    # The analysis drivers own their argument parsing; hand over before the
    # main parser sees (and rejects) their flags.
    if raw and raw[0] == "check":
        from .analysis.check import main as check_main

        return check_main(raw[1:])
    if raw and raw[0] == "lint":
        from .analysis.lint.runner import main as lint_main

        return lint_main(raw[1:])
    if raw and raw[0] == "analyze-tdg":
        from .analysis.tdgcheck import main as tdg_main

        return tdg_main(raw[1:])
    args = build_parser().parse_args(raw)
    if args.command == "list":
        print(_cmd_list_json() if args.json else _cmd_list())
    elif args.command == "table1":
        print(render_table1())
    elif args.command == "run":
        print(_cmd_run(args))
    elif args.command == "sweep":
        print(_cmd_sweep(args))
    elif args.command in ("figure4", "figure5"):
        runner = GridRunner(
            scale=args.scale,
            seeds=tuple(args.seeds),
            jobs=args.jobs,
            cache_dir=args.cache_dir,
            verbose=args.verbose,
            retry=_retry_from_args(args),
            batch_cells=args.batch_cells,
        )
        fn = run_figure4 if args.command == "figure4" else run_figure5
        result = fn(runner, fast_counts=tuple(args.fast))
        print(result.render())
        if result.stats is not None:
            print(result.stats.summary())
        if args.csv and result.grid is not None:
            result.grid.write_csv(args.csv)
            print(f"wrote {len(result.points)} points to {args.csv}")
        if not result.shape.ok:
            return 1
    elif args.command == "latency":
        from .harness import (
            LATENCY_INTENSITIES,
            LATENCY_POLICIES,
            LATENCY_SMOKE_TENANTS,
            LATENCY_TENANTS,
            run_latency,
        )

        tenants = args.tenants
        policies = tuple(args.policies) if args.policies else None
        intensities = tuple(args.intensities) if args.intensities else None
        if args.smoke:
            tenants = tenants or LATENCY_SMOKE_TENANTS
            policies = policies or ("fifo", "cata")
            intensities = intensities or (1.0,)
        study = run_latency(
            tenants=tenants or LATENCY_TENANTS,
            policies=policies or LATENCY_POLICIES,
            intensities=intensities or LATENCY_INTENSITIES,
            fast=args.fast,
            seed=args.seed,
            scale=args.scale,
            jobs=args.jobs,
            cache_dir=args.cache_dir,
            verbose=args.verbose,
            retry=_retry_from_args(args),
            batch_cells=args.batch_cells,
        )
        print(study.render())
        print(study.stats.summary())
        if args.csv:
            with open(args.csv, "w", encoding="utf-8") as fh:
                fh.write(study.to_csv() + "\n")
            print(f"wrote {len(study.rows)} rows to {args.csv}")
    elif args.command == "degradation":
        from .harness import (
            DEGRADATION_INTENSITIES,
            DEGRADATION_POLICIES,
            DEGRADATION_WORKLOADS,
            run_degradation,
        )

        study = run_degradation(
            workloads=tuple(args.workloads) if args.workloads else DEGRADATION_WORKLOADS,
            policies=tuple(args.policies) if args.policies else DEGRADATION_POLICIES,
            intensities=(
                tuple(args.intensities) if args.intensities else DEGRADATION_INTENSITIES
            ),
            fast=args.fast,
            seed=args.seed,
            scale=args.scale,
            jobs=args.jobs,
            cache_dir=args.cache_dir,
            verbose=args.verbose,
            batch_cells=args.batch_cells,
        )
        print(study.render())
        if args.csv:
            with open(args.csv, "w", encoding="utf-8") as fh:
                fh.write(study.to_csv() + "\n")
            print(f"wrote {len(study.rows)} rows to {args.csv}")
    elif args.command == "serve":
        return _cmd_serve(args)
    elif args.command in ("submit", "status", "fetch", "drain"):
        from .service.client import ServiceError

        handler = {
            "submit": _cmd_submit,
            "status": _cmd_status,
            "fetch": _cmd_fetch,
            "drain": _cmd_drain,
        }[args.command]
        try:
            return handler(args)
        except ServiceError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
    elif args.command == "section5c":
        runner = GridRunner(scale=args.scale, trace_enabled=True)
        print(render_section5c(run_section5c(runner, fast_cores=args.fast)))
    elif args.command == "experiments":
        from .harness import list_experiments, run_experiment

        if args.exp_id is None:
            rows = [
                (e.exp_id, e.paper_artifact, e.description)
                for e in list_experiments()
            ]
            print(render_table(["id", "artifact", "description"], rows,
                               title="Reproducible experiments"))
        else:
            print(run_experiment(args.exp_id, scale=args.scale,
                                 seeds=tuple(args.seeds), jobs=args.jobs,
                                 cache_dir=args.cache_dir,
                                 batch_cells=args.batch_cells,
                                 verbose=args.verbose))
    elif args.command == "characterize":
        stats = [
            characterize(build_program(name, scale=args.scale, seed=args.seed))
            for name in sorted(BENCHMARKS)
        ]
        headers, rows = characterization_rows(stats)
        print(render_table(headers, rows, title="Workload characterization"))
    elif args.command == "rsu":
        print(render_rsu_overhead(run_rsu_overhead(core_counts=tuple(args.cores))))
    elif args.command == "perf":
        from .perf import REGRESSION_THRESHOLD, run_perf

        threshold = (
            args.threshold if args.threshold is not None else REGRESSION_THRESHOLD
        )
        report, code = run_perf(
            out_dir=args.out_dir,
            smoke=args.smoke,
            check=args.check,
            threshold=threshold,
            update=args.update,
            only=tuple(args.only) if args.only else None,
            history_limit=args.history_limit,
        )
        print(report)
        return code
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
