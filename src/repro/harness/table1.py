"""Table I — processor configuration.

Regenerates the paper's Table I from :class:`~repro.sim.config
.MachineConfig`, proving the simulated machine matches the published one
row for row.
"""

from __future__ import annotations

from typing import Optional

from ..analysis.reporting import render_table
from ..sim.config import MachineConfig, default_machine

__all__ = ["table1_rows", "render_table1"]


def table1_rows(machine: Optional[MachineConfig] = None) -> list[tuple[str, str]]:
    """(parameter, value) rows in the paper's order."""
    m = machine if machine is not None else default_machine()
    u = m.uarch
    ov = m.overheads
    return [
        ("Core count", str(m.core_count)),
        ("Core type", "Out-of-order single threaded"),
        (
            "DVFS configurations",
            f"Fast cores: {m.fast.freq_ghz:g} GHz, {m.fast.voltage_v:g} V; "
            f"Slow cores: {m.slow.freq_ghz:g} GHz, {m.slow.voltage_v:g} V",
        ),
        ("Reconfiguration latency", f"{ov.dvfs_transition_ns / 1000:g} us"),
        (
            "Fetch, issue, commit bandwidth",
            f"{u.fetch_width} instr/cycle",
        ),
        ("Issue queue", f"Unified {u.issue_queue_entries} entries"),
        ("Reorder buffer", f"{u.rob_entries} entries"),
        ("Register file", f"{u.int_registers} INT, {u.fp_registers} FP"),
        (
            "Instruction L1",
            f"{u.l1i.size_kb}KB, {u.l1i.assoc}-way, {u.l1i.line_bytes}B/line "
            f"({u.l1i.hit_cycles} cycles hit)",
        ),
        (
            "Data L1",
            f"{u.l1d.size_kb}KB, {u.l1d.assoc}-way, {u.l1d.line_bytes}B/line "
            f"({u.l1d.hit_cycles} cycles hit)",
        ),
        ("Instruction TLB", f"{u.itlb_entries} entries fully-associative"),
        ("Data TLB", f"{u.dtlb_entries} entries fully-associative"),
        (
            "L2",
            f"Unified shared NUCA, banked {m.l2_per_core_mb:g}MB/core, "
            f"{m.l2_assoc}-way, {m.l2_hit_cycles}/{m.l2_miss_cycles} cycles hit/miss",
        ),
        (
            "Coherence protocol",
            f"MESI, distributed 4-way cache directory {m.directory_entries // 1024}K entries",
        ),
        (
            "NoC",
            f"{m.noc.rows}x{m.noc.cols} Mesh, link {m.noc.link_cycles} cycle",
        ),
    ]


def render_table1(machine: Optional[MachineConfig] = None) -> str:
    return render_table(
        ["Parameter", "Value"],
        table1_rows(machine),
        title="Table I: processor configuration",
    )
