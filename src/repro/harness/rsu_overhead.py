"""Section III-B.4 — RSU area and power overhead.

Regenerates the storage-bit formula and the CACTI-based claim that the RSU
adds less than 0.0001 % of chip area and less than 50 µW on a 32-core
processor, and extends it with a core-count sweep (the RSU is designed for
"future manycore systems", so showing how the cost scales is part of the
argument).
"""

from __future__ import annotations

from typing import Sequence

from ..analysis.reporting import render_table
from ..hw.rsu_cost import RsuOverhead, estimate_rsu_overhead

__all__ = ["run_rsu_overhead", "render_rsu_overhead"]


def run_rsu_overhead(
    core_counts: Sequence[int] = (32, 64, 128, 256, 1024),
    num_power_states: int = 2,
) -> list[RsuOverhead]:
    return [estimate_rsu_overhead(n, num_power_states) for n in core_counts]


def render_rsu_overhead(rows: Sequence[RsuOverhead]) -> str:
    return render_table(
        [
            "cores",
            "storage bits",
            "area (mm^2)",
            "area (% of chip)",
            "leakage (uW)",
            "meets paper claims",
        ],
        [
            (
                r.num_cores,
                r.storage_bits,
                f"{r.area_mm2:.6f}",
                f"{100 * r.area_fraction_of_chip:.6f}",
                f"{r.leakage_w * 1e6:.2f}",
                "yes" if r.meets_paper_claims else "no (beyond 32-core claim)",
            )
            for r in rows
        ],
        title="Section III-B.4: RSU area and power overhead",
    )
