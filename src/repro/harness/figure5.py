"""Figure 5 — CATA vs CATA+RSU vs TurboMode (speedup and normalized EDP).

Regenerates both panels of the paper's Figure 5: the architecturally
supported configurations across the six benchmarks at 8, 16 and 24 fast
cores, normalized to the FIFO scheduler (same baseline as Figure 4, so the
two figures are directly comparable).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from ..analysis.metrics import NormalizedPoint
from ..analysis.reporting import render_figure
from ..analysis.validate import ShapeReport, check_figure5_shape
from .executor import SweepStats
from .runner import PAPER_FAST_COUNTS, PAPER_WORKLOADS, GridResult, GridRunner

__all__ = ["FIGURE5_POLICIES", "Figure5Result", "run_figure5"]

FIGURE5_POLICIES: tuple[str, ...] = ("fifo", "cata", "cata_rsu", "turbomode")


@dataclass
class Figure5Result:
    points: list[NormalizedPoint]
    shape: ShapeReport
    stats: Optional[SweepStats] = None
    grid: Optional[GridResult] = None

    def render(self) -> str:
        speedup = render_figure(
            self.points,
            "speedup",
            FIGURE5_POLICIES,
            PAPER_WORKLOADS,
            title="Figure 5 (top): speedup over FIFO",
        )
        edp = render_figure(
            self.points,
            "normalized_edp",
            FIGURE5_POLICIES,
            PAPER_WORKLOADS,
            title="Figure 5 (bottom): normalized EDP (lower is better)",
        )
        return "\n\n".join([speedup, edp, self.shape.summary()])


def run_figure5(
    runner: Optional[GridRunner] = None,
    fast_counts: Sequence[int] = PAPER_FAST_COUNTS,
    workloads: Sequence[str] = PAPER_WORKLOADS,
    check_shape: bool = True,
) -> Figure5Result:
    """Simulate the Figure 5 grid and validate its paper-shape claims."""
    if runner is None:
        runner = GridRunner()
    grid = runner.run_grid(FIGURE5_POLICIES, workloads=workloads, fast_counts=fast_counts)
    if check_shape and set(workloads) == set(PAPER_WORKLOADS):
        shape = check_figure5_shape(grid.points)
    else:
        shape = ShapeReport()
    return Figure5Result(points=grid.points, shape=shape, stats=grid.stats, grid=grid)
