"""Degradation study: policy performance under injected machine faults.

The paper evaluates CATA on a pristine machine.  This extension asks the
robustness question the fault model (:mod:`repro.sim.faults`) exists for:
*how gracefully does each policy degrade when the machine misbehaves?*

Protocol, per (workload, policy):

1. run the fault-free baseline and derive a chaos **horizon** of 60% of
   the baseline's makespan, so injected faults land inside the window
   where the policy is actually making decisions regardless of workload
   length;
2. re-run under ``chaos:intensity=I,horizon=<ns>ns`` for each intensity
   in the ladder, with the fault mix drawn deterministically from
   ``(seed, spec)`` — the study is bitwise-reproducible and cacheable
   like any other sweep cell;
3. report the slowdown (faulted makespan / fault-free makespan) per
   intensity, plus the injected-event and recovery counters.

Static policies (``fifo``, ``cats_sa``) lose fast cores outright when a
core fails; reconfigurable ones (``cata``, ``cata_rsu``) re-accelerate
around the hole, which is the contrast the table exists to show.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from ..sim.config import MachineConfig
from .cache import ResultCache
from .executor import CellSpec, RetryPolicy, SweepExecutor

__all__ = [
    "DEGRADATION_WORKLOADS",
    "DEGRADATION_POLICIES",
    "DEGRADATION_INTENSITIES",
    "DegradationRow",
    "DegradationResult",
    "run_degradation",
]

DEGRADATION_WORKLOADS: tuple[str, ...] = ("swaptions", "fluidanimate")
DEGRADATION_POLICIES: tuple[str, ...] = (
    "fifo",
    "cats_sa",
    "turbomode",
    "cata",
    "cata_rsu",
)
#: Intensity ladder; 0.0 is the fault-free baseline row.
DEGRADATION_INTENSITIES: tuple[float, ...] = (0.0, 0.25, 0.5, 1.0)


@dataclass(frozen=True)
class DegradationRow:
    """One (workload, policy, intensity) cell of the study."""

    workload: str
    policy: str
    intensity: float
    faults_spec: str
    exec_time_ns: float
    #: Faulted makespan / fault-free makespan (1.0 at intensity 0).
    slowdown: float
    energy_j: float
    tasks_executed: int
    events_injected: int
    cores_failed: int
    tasks_aborted: int
    rsu_outages: int


@dataclass
class DegradationResult:
    """All rows of one degradation study plus its parameters."""

    fast: int
    seed: int
    scale: float
    intensities: tuple[float, ...]
    rows: list[DegradationRow]

    def row(self, workload: str, policy: str, intensity: float) -> DegradationRow:
        for r in self.rows:
            if (
                r.workload == workload
                and r.policy == policy
                and r.intensity == intensity
            ):
                return r
        raise KeyError((workload, policy, intensity))

    def to_csv(self) -> str:
        lines = [
            "workload,policy,intensity,slowdown,exec_time_ns,energy_j,"
            "tasks_executed,events_injected,cores_failed,tasks_aborted,rsu_outages"
        ]
        for r in self.rows:
            lines.append(
                f"{r.workload},{r.policy},{r.intensity},{r.slowdown:.6f},"
                f"{r.exec_time_ns:.1f},{r.energy_j:.6f},{r.tasks_executed},"
                f"{r.events_injected},{r.cores_failed},{r.tasks_aborted},"
                f"{r.rsu_outages}"
            )
        return "\n".join(lines)

    def render(self) -> str:
        """Per-workload slowdown table, policies as rows, intensities as columns."""
        out: list[str] = [
            "Degradation under injected faults "
            f"(slowdown vs fault-free; fast={self.fast}, seed={self.seed}, "
            f"scale={self.scale})",
            "",
        ]
        workloads = list(dict.fromkeys(r.workload for r in self.rows))
        policies = list(dict.fromkeys(r.policy for r in self.rows))
        header = ["policy"] + [f"I={i:g}" for i in self.intensities]
        widths = [max(10, len(h) + 2) for h in header]
        for workload in workloads:
            out.append(f"== {workload} ==")
            out.append("".join(h.ljust(w) for h, w in zip(header, widths)))
            for policy in policies:
                cells = [policy]
                for intensity in self.intensities:
                    r = self.row(workload, policy, intensity)
                    note = ""
                    if r.cores_failed:
                        note = f" ({r.cores_failed} dead)"
                    cells.append(f"{r.slowdown:.3f}{note}")
                out.append("".join(c.ljust(w) for c, w in zip(cells, widths)))
            out.append("")
        return "\n".join(out).rstrip() + "\n"


def _chaos_spec(intensity: float, horizon_ns: float) -> str:
    return f"chaos:intensity={intensity:g},horizon={int(round(horizon_ns))}ns"


def run_degradation(
    workloads: Sequence[str] = DEGRADATION_WORKLOADS,
    policies: Sequence[str] = DEGRADATION_POLICIES,
    intensities: Sequence[float] = DEGRADATION_INTENSITIES,
    fast: int = 8,
    seed: int = 1,
    scale: float = 0.3,
    jobs: int = 1,
    cache_dir: Optional[str] = None,
    machine: Optional[MachineConfig] = None,
    verbose: bool = False,
    retry: Optional[RetryPolicy] = None,
    batch_cells: int = 1,
) -> DegradationResult:
    """Run the two-phase degradation study (baselines, then chaos ladder)."""
    executor = SweepExecutor(
        jobs=jobs,
        cache=ResultCache(cache_dir) if cache_dir is not None else None,
        machine=machine,
        verbose=verbose,
        retry=retry,
        batch_cells=batch_cells,
    )

    def spec(workload: str, policy: str, faults: str) -> CellSpec:
        return CellSpec(
            workload=workload,
            policy=policy,
            fast=fast,
            seed=seed,
            scale=scale,
            faults=faults,
        )

    # Phase 1 — fault-free baselines; one parallel batch.
    base_specs = {
        (w, p): spec(w, p, "off") for w in workloads for p in policies
    }
    base_results, _ = executor.run_cells(list(base_specs.values()))

    # Phase 2 — chaos ladder, horizon pinned to 60% of each baseline's
    # makespan; one parallel batch across every (cell, intensity).
    chaos_specs: dict[tuple[str, str, float], CellSpec] = {}
    for (w, p), base in base_specs.items():
        horizon_ns = 0.6 * base_results[base].exec_time_ns
        for intensity in intensities:
            if intensity == 0.0:
                continue
            chaos_specs[(w, p, intensity)] = spec(
                w, p, _chaos_spec(intensity, horizon_ns)
            )
    chaos_results, _ = executor.run_cells(list(chaos_specs.values()))

    rows: list[DegradationRow] = []
    for w in workloads:
        for p in policies:
            base = base_results[base_specs[(w, p)]]
            for intensity in intensities:
                if intensity == 0.0:
                    result, faults_spec = base, "off"
                else:
                    cell = chaos_specs[(w, p, intensity)]
                    result, faults_spec = chaos_results[cell], cell.faults
                summary = result.extra.get("faults", {})
                rows.append(
                    DegradationRow(
                        workload=w,
                        policy=p,
                        intensity=intensity,
                        faults_spec=faults_spec,
                        exec_time_ns=result.exec_time_ns,
                        slowdown=result.exec_time_ns / base.exec_time_ns,
                        energy_j=result.energy_j,
                        tasks_executed=result.tasks_executed,
                        events_injected=summary.get("events", 0),
                        cores_failed=summary.get("cores_failed", 0),
                        tasks_aborted=summary.get("tasks_aborted", 0),
                        rsu_outages=summary.get("rsu_outages", 0),
                    )
                )
    return DegradationResult(
        fast=fast,
        seed=seed,
        scale=scale,
        intensities=tuple(intensities),
        rows=rows,
    )
