"""Extension figure: criticality-estimator comparison.

The paper compares two estimators (static annotations vs bottom-level) and
concludes SA is slightly better because BL pays exploration overhead and
sees only path *length*.  This harness extends that comparison with the
duration-weighted bottom-level (`cats_wbl`), which removes the second
limitation — producing the reproduction's headline extension result: a
fully dynamic estimator that beats hand annotations on duration-imbalanced
pipelines.

Rendered like Figure 4's speedup panel, over the same benchmarks/budgets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from ..analysis.metrics import NormalizedPoint
from ..analysis.reporting import render_figure
from ..analysis.stats import arithmetic_mean, group_by
from .runner import PAPER_FAST_COUNTS, PAPER_WORKLOADS, GridRunner

__all__ = ["ESTIMATOR_POLICIES", "EstimatorStudyResult", "run_estimator_study"]

ESTIMATOR_POLICIES: tuple[str, ...] = ("fifo", "cats_bl", "cats_wbl", "cats_sa")


@dataclass
class EstimatorStudyResult:
    points: list[NormalizedPoint]

    def average(self, policy: str, fast: int) -> float:
        group = group_by(self.points)[(policy, fast)]
        return arithmetic_mean([p.speedup for p in group])

    def render(self) -> str:
        return render_figure(
            self.points,
            "speedup",
            ESTIMATOR_POLICIES,
            PAPER_WORKLOADS,
            title="Extension figure: criticality estimators "
            "(BL vs duration-weighted BL vs static annotations)",
        )


def run_estimator_study(
    runner: Optional[GridRunner] = None,
    fast_counts: Sequence[int] = PAPER_FAST_COUNTS,
    workloads: Sequence[str] = PAPER_WORKLOADS,
) -> EstimatorStudyResult:
    if runner is None:
        runner = GridRunner()
    grid = runner.run_grid(
        ESTIMATOR_POLICIES, workloads=workloads, fast_counts=fast_counts
    )
    return EstimatorStudyResult(points=grid.points)
