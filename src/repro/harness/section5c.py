"""Section V-C — reconfiguration latency and lock contention statistics.

Reproduces the in-text measurements of the paper's Section V-C:

* the average end-to-end reconfiguration latency of software CATA
  (paper: 11 µs – 65 µs across the six applications),
* the maximum lock acquisition time under bursty reconfiguration
  (paper: several milliseconds — 4.8 ms to 15 ms — in Blackscholes,
  Fluidanimate and Bodytrack),
* the aggregate reconfiguration overhead as a fraction of total core time
  (paper: 0.03 % – 3.49 %),
* the contrast with the RSU, whose reconfigurations are two ISA ops.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from ..analysis.reporting import render_table
from ..sim.engine import US
from .runner import PAPER_WORKLOADS, GridRunner

__all__ = ["Section5CRow", "run_section5c", "render_section5c"]

#: The applications the paper calls out for millisecond-scale lock waits.
LOCK_CONTENDED_APPS = ("blackscholes", "fluidanimate", "bodytrack")


@dataclass(frozen=True)
class Section5CRow:
    workload: str
    fast_cores: int
    reconfig_count: int
    avg_reconfig_latency_us: float
    max_lock_wait_us: float
    total_lock_wait_us: float
    overhead_fraction_pct: float


def run_section5c(
    runner: Optional[GridRunner] = None,
    workloads: Sequence[str] = PAPER_WORKLOADS,
    fast_cores: int = 16,
) -> list[Section5CRow]:
    """Run software CATA with tracing enabled and extract V-C statistics."""
    if runner is None:
        runner = GridRunner(trace_enabled=True)
    if not runner.trace_enabled:
        raise ValueError("section 5C statistics require trace_enabled=True")
    rows = []
    for workload in workloads:
        result = runner.run_one(workload, "cata", fast_cores)
        core_count = (
            runner.machine.core_count if runner.machine is not None else 32
        )
        rows.append(
            Section5CRow(
                workload=workload,
                fast_cores=fast_cores,
                reconfig_count=result.reconfig_count,
                avg_reconfig_latency_us=result.avg_reconfig_latency_ns / US,
                max_lock_wait_us=result.max_lock_wait_ns / US,
                total_lock_wait_us=result.total_lock_wait_ns / US,
                overhead_fraction_pct=100.0
                * result.reconfig_overhead_fraction(core_count),
            )
        )
    return rows


def render_section5c(rows: Sequence[Section5CRow]) -> str:
    return render_table(
        [
            "benchmark",
            "fast",
            "reconfigs",
            "avg latency (us)",
            "max lock wait (us)",
            "overhead (%)",
        ],
        [
            (
                r.workload,
                r.fast_cores,
                r.reconfig_count,
                r.avg_reconfig_latency_us,
                r.max_lock_wait_us,
                r.overhead_fraction_pct,
            )
            for r in rows
        ],
        title="Section V-C: software CATA reconfiguration statistics",
    )
