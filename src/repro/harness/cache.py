"""Content-addressed on-disk cache for sweep results.

Every grid cell is a pure, deterministic function of its key — workload,
policy, fast-core budget, seed, scale, the machine configuration and the
code/schema version.  The cache therefore addresses results by a SHA-256
hash of exactly those fields: two runners (or two invocations days apart)
can never alias results across scales or machine configurations, and
bumping :data:`CACHE_SCHEMA_VERSION` after a behavioral simulator change
invalidates every stale entry at once without touching the disk.

Layout: ``<root>/<key[:2]>/<key>.json``, one JSON document per result
(serialized via :mod:`repro.sim.serialize`).  Writes are atomic
(temp file + :func:`os.replace`) so a concurrent or killed run can never
leave a half-written entry; reads treat any undecodable or truncated file
as a miss and move it into ``<root>/quarantine/`` for post-mortem, so
corruption costs one re-simulation, not a crash and not the evidence.
A cache whose filesystem rejects writes (read-only mount, quota, ENOSPC)
degrades to read-only for the rest of the session instead of failing the
sweep.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import warnings
from typing import Any, Optional

from ..runtime.system import RunResult
from ..sim.config import MachineConfig, default_machine
from ..sim.serialize import machine_to_dict, result_from_dict, result_to_dict

__all__ = [
    "CACHE_SCHEMA_VERSION",
    "QUARANTINE_DIR",
    "machine_fingerprint",
    "cell_key",
    "ResultCache",
]

#: Bump whenever the simulator's observable behavior or the serialized
#: schema changes; every previously cached result then misses.
#: v2: cell keys gained the fault-injection spec field.
#: v3: cell keys gained the scenario/arrival spec field and RunResult
#: gained optional tail-latency/QoS fields.
CACHE_SCHEMA_VERSION: int = 3

#: Subdirectory (under the cache root) holding corrupt entries moved aside
#: by :meth:`ResultCache.get` instead of being deleted.
QUARANTINE_DIR = "quarantine"


def machine_fingerprint(machine: Optional[MachineConfig] = None) -> str:
    """Stable hex digest of a machine configuration.

    ``None`` fingerprints the default machine — the configuration that a
    runner constructed without an explicit machine will actually simulate.
    """
    if machine is None:
        machine = default_machine()
    blob = json.dumps(machine_to_dict(machine), sort_keys=True)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def cell_key(
    workload: str,
    policy: str,
    fast: int,
    seed: int,
    scale: float,
    machine: Optional[MachineConfig] = None,
    trace_enabled: bool = False,
    faults: str = "off",
    scenario: str = "off",
) -> str:
    """Content address of one grid cell's result.

    ``scenario`` is the canonical open-loop scenario spec, or ``"off"``
    for legacy closed-loop cells; it joins the key so a scenario cell can
    never alias the closed-loop cell for the same workload name.
    """
    blob = json.dumps(
        {
            "schema": CACHE_SCHEMA_VERSION,
            "workload": workload,
            "policy": policy,
            "fast": fast,
            "seed": seed,
            "scale": scale,
            "machine": machine_fingerprint(machine),
            "trace": bool(trace_enabled),
            "faults": faults,
            "scenario": scenario,
        },
        sort_keys=True,
    )
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


class ResultCache:
    """Persistent result store with hit/miss accounting."""

    def __init__(self, root: str) -> None:
        self.root = root
        try:
            os.makedirs(root, exist_ok=True)
        except (FileExistsError, NotADirectoryError) as exc:
            raise ValueError(
                f"cache dir {root!r} exists and is not a directory"
            ) from exc
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.corrupt_evictions = 0
        self.write_failures = 0
        #: Set after the first failed write: the sweep continues with the
        #: cache in read-only mode instead of failing on every cell.
        self.disabled = False

    def _path(self, key: str) -> str:
        return os.path.join(self.root, key[:2], f"{key}.json")

    def _quarantine(self, path: str) -> None:
        """Move a corrupt entry under ``<root>/quarantine/`` for post-mortem.

        Falls back to deletion (and then to leaving the file in place) if
        the move itself fails — eviction must never raise.
        """
        qdir = os.path.join(self.root, QUARANTINE_DIR)
        try:
            os.makedirs(qdir, exist_ok=True)
            os.replace(path, os.path.join(qdir, os.path.basename(path)))
        except OSError:
            try:
                os.remove(path)
            except OSError:
                pass

    def get(self, key: str) -> Optional[RunResult]:
        """Cached result for ``key``, or ``None`` (miss or corrupt entry)."""
        path = self._path(key)
        try:
            with open(path, encoding="utf-8") as fh:
                data: Any = json.load(fh)
            result = result_from_dict(data)
        except FileNotFoundError:
            self.misses += 1
            return None
        except (json.JSONDecodeError, KeyError, TypeError, ValueError, OSError):
            # Truncated/corrupt entry: quarantine and recompute rather than
            # crash; the moved-aside file keeps the evidence.
            self.corrupt_evictions += 1
            self.misses += 1
            self._quarantine(path)
            return None
        self.hits += 1
        return result

    def put(self, key: str, result: RunResult) -> None:
        """Atomically persist ``result`` under ``key``.

        A failed write (read-only filesystem, quota, ENOSPC) warns once and
        flips the cache to read-only for the rest of the session — a broken
        cache must degrade the sweep, not abort it.
        """
        if self.disabled:
            return
        path = self._path(key)
        tmp: Optional[str] = None
        try:
            os.makedirs(os.path.dirname(path), exist_ok=True)
            fd, tmp = tempfile.mkstemp(
                dir=os.path.dirname(path), prefix=".tmp-", suffix=".json"
            )
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(result_to_dict(result), fh, sort_keys=True)
            os.replace(tmp, path)
            tmp = None
        except OSError as exc:
            self.write_failures += 1
            self.disabled = True
            warnings.warn(
                f"result cache at {self.root!r} is not writable ({exc}); "
                "continuing without persisting results",
                stacklevel=2,
            )
            return
        finally:
            if tmp is not None:
                try:
                    os.remove(tmp)
                except OSError:
                    pass
        self.stores += 1

    def __len__(self) -> int:
        """Number of intact entries (quarantined and temp files excluded)."""
        n = 0
        for dirpath, dirnames, files in os.walk(self.root):
            if QUARANTINE_DIR in dirnames:
                dirnames.remove(QUARANTINE_DIR)
            n += sum(
                1
                for f in files
                if f.endswith(".json") and not f.startswith(".tmp-")
            )
        return n
