"""Figure 4 — Speedup and normalized EDP of FIFO / CATS+BL / CATS+SA / CATA.

Regenerates both panels of the paper's Figure 4: the four software-only
configurations across the six benchmarks at 8, 16 and 24 fast cores, all
normalized to the FIFO scheduler at the same fast-core count.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from ..analysis.metrics import NormalizedPoint
from ..analysis.reporting import render_figure
from ..analysis.validate import ShapeReport, check_figure4_shape
from .executor import SweepStats
from .runner import PAPER_FAST_COUNTS, PAPER_WORKLOADS, GridResult, GridRunner

__all__ = ["FIGURE4_POLICIES", "Figure4Result", "run_figure4"]

FIGURE4_POLICIES: tuple[str, ...] = ("fifo", "cats_bl", "cats_sa", "cata")


@dataclass
class Figure4Result:
    points: list[NormalizedPoint]
    shape: ShapeReport
    stats: Optional[SweepStats] = None
    grid: Optional[GridResult] = None

    def render(self) -> str:
        speedup = render_figure(
            self.points,
            "speedup",
            FIGURE4_POLICIES,
            PAPER_WORKLOADS,
            title="Figure 4 (top): speedup over FIFO",
        )
        edp = render_figure(
            self.points,
            "normalized_edp",
            FIGURE4_POLICIES,
            PAPER_WORKLOADS,
            title="Figure 4 (bottom): normalized EDP (lower is better)",
        )
        return "\n\n".join([speedup, edp, self.shape.summary()])


def run_figure4(
    runner: Optional[GridRunner] = None,
    fast_counts: Sequence[int] = PAPER_FAST_COUNTS,
    workloads: Sequence[str] = PAPER_WORKLOADS,
    check_shape: bool = True,
) -> Figure4Result:
    """Simulate the Figure 4 grid and validate its paper-shape claims."""
    if runner is None:
        runner = GridRunner()
    grid = runner.run_grid(FIGURE4_POLICIES, workloads=workloads, fast_counts=fast_counts)
    if check_shape and set(workloads) == set(PAPER_WORKLOADS):
        shape = check_figure4_shape(grid.points)
    else:
        shape = ShapeReport()
    return Figure4Result(points=grid.points, shape=shape, stats=grid.stats, grid=grid)
