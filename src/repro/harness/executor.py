"""Parallel sweep executor.

Every grid cell — one ``(workload, policy, fast, seed)`` simulation at a
given scale on a given machine — is a pure, deterministic function of its
key, so independent cells can fan out across a process pool and produce
bitwise-identical results regardless of worker count or completion order.
The executor layers three stores, checked in order:

1. the caller's in-memory memo (:class:`~repro.harness.runner.GridRunner`
   keeps one per runner),
2. an optional persistent :class:`~repro.harness.cache.ResultCache` on
   disk, shared between runners and invocations,
3. actual simulation, inline for ``jobs=1`` or via
   :class:`concurrent.futures.ProcessPoolExecutor` for ``jobs>1``.

Per-cell wall-clock timings and hit/miss counters accumulate in
:class:`SweepStats`; the harness surfaces them in verbose output and in
``GridResult.stats``.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Optional, Sequence

from ..core.policies import run_policy
from ..runtime.system import RunResult
from ..sim.config import MachineConfig
from ..sim.serialize import machine_from_dict, machine_to_dict
from ..workloads import build_program
from .cache import ResultCache, cell_key

__all__ = ["CellSpec", "SweepStats", "SweepExecutor", "simulate_cell"]


@dataclass(frozen=True)
class CellSpec:
    """One independent simulation of the sweep grid."""

    workload: str
    policy: str
    fast: int
    seed: int
    scale: float
    trace_enabled: bool = False

    def label(self) -> str:
        return f"{self.workload}/{self.policy}@{self.fast} seed={self.seed}"

    def key(self, machine: Optional[MachineConfig] = None) -> str:
        return cell_key(
            self.workload,
            self.policy,
            self.fast,
            self.seed,
            self.scale,
            machine,
            self.trace_enabled,
        )


def simulate_cell(
    spec: CellSpec, machine_dict: Optional[dict[str, Any]] = None
) -> tuple[RunResult, float]:
    """Simulate one cell; returns ``(result, sim_seconds)``.

    Module-level so it pickles into pool workers; the machine travels as a
    plain dict for the same reason.
    """
    machine = machine_from_dict(machine_dict) if machine_dict is not None else None
    t0 = time.perf_counter()
    program = build_program(
        spec.workload, scale=spec.scale, seed=spec.seed, machine=machine
    )
    result = run_policy(
        program,
        spec.policy,
        machine=machine,
        fast_cores=spec.fast,
        seed=spec.seed,
        trace_enabled=spec.trace_enabled,
    )
    return result, time.perf_counter() - t0


@dataclass
class SweepStats:
    """Cell accounting for one batch (or one executor's lifetime)."""

    cells: int = 0
    memo_hits: int = 0
    cache_hits: int = 0
    simulated: int = 0
    sim_seconds: float = 0.0
    wall_seconds: float = 0.0
    #: (cell label, seconds) for every simulated cell, submission order.
    timings: list[tuple[str, float]] = field(default_factory=list)

    @property
    def cache_misses(self) -> int:
        return self.simulated

    def merge(self, other: "SweepStats") -> None:
        self.cells += other.cells
        self.memo_hits += other.memo_hits
        self.cache_hits += other.cache_hits
        self.simulated += other.simulated
        self.sim_seconds += other.sim_seconds
        self.wall_seconds += other.wall_seconds
        self.timings.extend(other.timings)

    def summary(self) -> str:
        parts = [
            f"cells: {self.cells}",
            f"memo hits: {self.memo_hits}",
            f"cache hits: {self.cache_hits}",
            f"cache misses: {self.cache_misses}",
            f"simulated: {self.simulated}",
            f"sim time: {self.sim_seconds:.2f}s",
            f"wall time: {self.wall_seconds:.2f}s",
        ]
        return "sweep stats — " + ", ".join(parts)


class SweepExecutor:
    """Fans independent cells across processes, read-through cached."""

    def __init__(
        self,
        jobs: int = 1,
        cache: Optional[ResultCache] = None,
        machine: Optional[MachineConfig] = None,
        verbose: bool = False,
    ) -> None:
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs
        self.cache = cache
        self.machine = machine
        self.verbose = verbose
        #: Lifetime totals across every ``run_cells`` call.
        self.stats = SweepStats()

    def run_cells(
        self, specs: Sequence[CellSpec]
    ) -> tuple[dict[CellSpec, RunResult], SweepStats]:
        """Resolve every spec (cache first, then simulation).

        Duplicate specs are computed once.  Returns the result map and the
        stats of this batch alone; lifetime totals accumulate on
        ``self.stats``.
        """
        t0 = time.perf_counter()
        batch = SweepStats(cells=len(specs))
        unique = list(dict.fromkeys(specs))
        results: dict[CellSpec, RunResult] = {}
        to_run: list[CellSpec] = []
        for spec in unique:
            cached = (
                self.cache.get(spec.key(self.machine))
                if self.cache is not None
                else None
            )
            if cached is not None:
                if self.verbose:
                    print(f"  cache hit  {spec.label()}", flush=True)
                batch.cache_hits += 1
                results[spec] = cached
            else:
                to_run.append(spec)

        for spec, (result, seconds) in zip(to_run, self._simulate(to_run)):
            results[spec] = result
            batch.simulated += 1
            batch.sim_seconds += seconds
            batch.timings.append((spec.label(), seconds))
            if self.verbose:
                print(f"  simulated  {spec.label()} in {seconds:.2f}s", flush=True)
            if self.cache is not None:
                self.cache.put(spec.key(self.machine), result)

        batch.wall_seconds = time.perf_counter() - t0
        self.stats.merge(batch)
        return results, batch

    def _simulate(
        self, specs: Sequence[CellSpec]
    ) -> list[tuple[RunResult, float]]:
        if not specs:
            return []
        machine_dict = (
            machine_to_dict(self.machine) if self.machine is not None else None
        )
        if self.jobs == 1 or len(specs) == 1:
            return [simulate_cell(spec, machine_dict) for spec in specs]
        workers = min(self.jobs, len(specs))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = [pool.submit(simulate_cell, s, machine_dict) for s in specs]
            return [f.result() for f in futures]
