"""Parallel sweep executor with crash recovery.

Every grid cell — one ``(workload, policy, fast, seed, faults)`` simulation
at a given scale on a given machine — is a pure, deterministic function of
its key, so independent cells can fan out across a process pool and produce
bitwise-identical results regardless of worker count, completion order, or
how many times a worker had to be restarted.  The executor layers three
stores, checked in order:

1. the caller's in-memory memo (:class:`~repro.harness.runner.GridRunner`
   keeps one per runner),
2. an optional persistent :class:`~repro.harness.cache.ResultCache` on
   disk, shared between runners and invocations,
3. actual simulation, inline for ``jobs=1`` or via
   :class:`concurrent.futures.ProcessPoolExecutor` for ``jobs>1``.

The simulation layer is hardened against the failure modes of long
sweeps (:class:`RetryPolicy`):

* a **crashed worker** (OOM kill, segfault, SIGKILL) breaks the pool; the
  executor rebuilds it and re-dispatches only the cells that were in
  flight — finished results are never recomputed;
* a **hung cell** is detected by a per-cell wall-clock timeout; the stuck
  pool is torn down, the overdue cell re-queued with one attempt consumed
  and the innocent in-flight cells re-queued for free;
* a **transient exception** is retried with exponential backoff (jitter
  drawn from a seeded RNG, so retry schedules are reproducible), while
  deterministic errors (``ValueError`` &c.) surface immediately —
  retrying a misspelled policy name three times helps nobody;
* after ``pool_failure_limit`` pool teardowns the executor stops trusting
  process isolation and degrades to inline (in-process) execution for the
  remaining cells.

Completed cells are checkpointed through the cache and the optional
:class:`~repro.harness.journal.SweepJournal`, so a sweep killed at cell
N of M resumes by re-simulating only the unfinished cells.

Per-cell wall-clock timings and hit/miss/recovery counters accumulate in
:class:`SweepStats`; the harness surfaces them in verbose output and in
``GridResult.stats``.
"""

from __future__ import annotations

import json
import random
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Sequence

from ..core.policies import run_policy, run_scenario_policy
from ..runtime.system import RunResult
from ..sim.arrays import KernelArena
from ..sim.config import MachineConfig, default_machine
from ..sim.serialize import machine_from_dict, machine_to_dict
from ..workloads import build_program
from .cache import ResultCache, cell_key
from .journal import SweepJournal

__all__ = [
    "CellSpec",
    "CellFailedError",
    "RetryPolicy",
    "SweepStats",
    "SweepExecutor",
    "simulate_cell",
    "simulate_cell_batch",
]


class CellFailedError(RuntimeError):
    """A cell exhausted its attempts for a reason other than a timeout.

    Raised when a cell was in flight during ``max_attempts`` worker-pool
    crashes in a row — the repeated implication suggests the cell itself
    (e.g. an OOM-triggering configuration) is killing its workers.
    Distinct from :class:`TimeoutError`, which keeps meaning exactly
    "exceeded ``cell_timeout_s`` wall-clock"; a sweep with timeouts
    disabled can still see this error.
    """

#: Exception types that no amount of retrying will fix — bad policy names,
#: malformed fault specs, type errors.  They re-raise immediately so the
#: caller sees the same exception type with or without the retry layer.
_NON_RETRYABLE: tuple[type[BaseException], ...] = (
    ValueError,
    TypeError,
    NotImplementedError,
)


@dataclass(frozen=True)
class CellSpec:
    """One independent simulation of the sweep grid."""

    workload: str
    policy: str
    fast: int
    seed: int
    scale: float
    trace_enabled: bool = False
    #: Fault-injection spec (see :mod:`repro.sim.faults`); ``"off"`` keeps
    #: the machine pristine and the cell key backward-distinct.
    faults: str = "off"
    #: Canonical open-loop scenario spec (see
    #: :mod:`repro.workloads.scenario`); ``"off"`` = closed-loop legacy
    #: cell.  When set, ``workload`` is a display label only — the tenants'
    #: benchmarks come from the spec itself.
    scenario: str = "off"

    def label(self) -> str:
        tail = f" faults={self.faults}" if self.faults != "off" else ""
        if self.scenario != "off":
            tail += f" scenario={self.scenario}"
        return f"{self.workload}/{self.policy}@{self.fast} seed={self.seed}{tail}"

    def key(self, machine: Optional[MachineConfig] = None) -> str:
        return cell_key(
            self.workload,
            self.policy,
            self.fast,
            self.seed,
            self.scale,
            machine,
            self.trace_enabled,
            self.faults,
            self.scenario,
        )


def _machine_fingerprint(machine_dict: Optional[dict[str, Any]]) -> str:
    """Stable identity of a machine config for arena memo scoping."""
    if machine_dict is None:
        return "default-machine"
    return json.dumps(machine_dict, sort_keys=True)


def simulate_cell(
    spec: CellSpec,
    machine_dict: Optional[dict[str, Any]] = None,
    arena: Optional[KernelArena] = None,
) -> tuple[RunResult, float]:
    """Simulate one cell; returns ``(result, sim_seconds)``.

    Module-level so it pickles into pool workers; the machine travels as a
    plain dict for the same reason.  ``arena`` donates reusable kernel
    buffers and machine-fingerprint-scoped memos for multi-cell worker
    sessions (``--batch-cells``); it is reset here, before anything of the
    previous cell can leak, so a batched cell is bitwise-identical to a
    fresh-process run.
    """
    t0 = time.perf_counter()
    if arena is not None:
        fingerprint = _machine_fingerprint(machine_dict)
        arena.reset(fingerprint)
        machine = arena.machine_cache.get(fingerprint)
        if machine is None:
            machine = (
                machine_from_dict(machine_dict)
                if machine_dict is not None
                else default_machine()
            )
            arena.machine_cache[fingerprint] = machine
    else:
        machine = machine_from_dict(machine_dict) if machine_dict is not None else None
    if spec.scenario != "off":
        result = run_scenario_policy(
            spec.scenario,
            spec.policy,
            machine=machine,
            fast_cores=spec.fast,
            seed=spec.seed,
            scale=spec.scale,
            trace_enabled=spec.trace_enabled,
            faults=spec.faults,
            arena=arena,
        )
        return result, time.perf_counter() - t0
    program = build_program(
        spec.workload, scale=spec.scale, seed=spec.seed, machine=machine
    )
    result = run_policy(
        program,
        spec.policy,
        machine=machine,
        fast_cores=spec.fast,
        seed=spec.seed,
        trace_enabled=spec.trace_enabled,
        faults=spec.faults,
        arena=arena,
    )
    return result, time.perf_counter() - t0


#: Per-worker-process arena, created on first batched chunk and reused for
#: every later chunk the pool sends this worker — the whole point of
#: ``--batch-cells`` is that buffer allocation, kernel loading and machine
#: parsing happen once per worker instead of once per cell.
_WORKER_ARENA: Optional[KernelArena] = None


def _worker_arena() -> KernelArena:
    global _WORKER_ARENA
    if _WORKER_ARENA is None:
        _WORKER_ARENA = KernelArena()
    return _WORKER_ARENA


def simulate_cell_batch(
    specs: Sequence[CellSpec],
    machine_dict: Optional[dict[str, Any]] = None,
    cell_fn: Callable[..., tuple[RunResult, float]] = simulate_cell,
) -> list[tuple[RunResult, float]]:
    """Simulate several cells back-to-back in one worker process.

    The cells share the process-level :class:`KernelArena` (when running
    the real ``simulate_cell``; an injected ``cell_fn`` — the chaos tests'
    crashing/hanging cells — keeps its plain two-argument signature and
    gets no arena).  Results are bitwise-identical to one-process-per-cell
    execution: the arena is reset between cells and its shared memos are
    value-keyed and machine-fingerprint-scoped.
    """
    if cell_fn is simulate_cell:
        arena = _worker_arena()
        return [simulate_cell(spec, machine_dict, arena=arena) for spec in specs]
    return [cell_fn(spec, machine_dict) for spec in specs]


@dataclass(frozen=True)
class RetryPolicy:
    """Crash/timeout/retry behavior of one executor."""

    #: Total tries per cell (first run included).
    max_attempts: int = 3
    #: Per-cell wall-clock limit in seconds; ``None`` disables timeouts.
    cell_timeout_s: Optional[float] = None
    #: Exponential-backoff base before an exception retry.
    backoff_base_s: float = 0.25
    #: Backoff ceiling.
    backoff_cap_s: float = 10.0
    #: Pool teardowns tolerated before degrading to inline execution.
    pool_failure_limit: int = 3
    #: Seed of the backoff-jitter RNG (reproducible retry schedules).
    jitter_seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.cell_timeout_s is not None and self.cell_timeout_s <= 0:
            raise ValueError("cell_timeout_s must be positive")
        if self.pool_failure_limit < 1:
            raise ValueError("pool_failure_limit must be >= 1")

    def backoff_s(self, attempt: int, rng: random.Random) -> float:
        """Jittered exponential delay before retry number ``attempt``."""
        base = min(self.backoff_cap_s, self.backoff_base_s * (2 ** (attempt - 1)))
        return base * (0.5 + 0.5 * rng.random())


@dataclass
class SweepStats:
    """Cell accounting for one batch (or one executor's lifetime)."""

    cells: int = 0
    memo_hits: int = 0
    cache_hits: int = 0
    #: Duplicate specs in the submitted batch, resolved once and fanned
    #: back out; ``cells == cache_hits + simulated + deduped`` holds for
    #: every ``run_cells`` batch.
    deduped: int = 0
    simulated: int = 0
    sim_seconds: float = 0.0
    wall_seconds: float = 0.0
    #: Cells whose cache hit was journaled by an earlier (interrupted) run.
    resumed: int = 0
    #: Exception-driven re-executions.
    retries: int = 0
    #: Cells that exceeded the per-cell wall-clock limit.
    timeouts: int = 0
    #: Process-pool teardowns (worker crash or hung cell).
    pool_crashes: int = 0
    #: Cells that ran inline after the executor degraded.
    inline_cells: int = 0
    #: Cells simulated inside a multi-cell arena session (``--batch-cells``).
    batched_cells: int = 0
    #: Corrupt cache entries moved to quarantine during this batch.
    quarantined: int = 0
    #: Cache writes that failed (cache degraded to read-only).
    cache_write_failures: int = 0
    #: (cell label, seconds) for every simulated cell, submission order.
    timings: list[tuple[str, float]] = field(default_factory=list)

    @property
    def cache_misses(self) -> int:
        return self.simulated

    def merge(self, other: "SweepStats") -> None:
        self.cells += other.cells
        self.memo_hits += other.memo_hits
        self.cache_hits += other.cache_hits
        self.deduped += other.deduped
        self.simulated += other.simulated
        self.sim_seconds += other.sim_seconds
        self.wall_seconds += other.wall_seconds
        self.resumed += other.resumed
        self.retries += other.retries
        self.timeouts += other.timeouts
        self.pool_crashes += other.pool_crashes
        self.inline_cells += other.inline_cells
        self.batched_cells += other.batched_cells
        self.quarantined += other.quarantined
        self.cache_write_failures += other.cache_write_failures
        self.timings.extend(other.timings)

    def summary(self) -> str:
        parts = [
            f"cells: {self.cells}",
            f"memo hits: {self.memo_hits}",
            f"cache hits: {self.cache_hits}",
            f"cache misses: {self.cache_misses}",
            f"simulated: {self.simulated}",
            f"sim time: {self.sim_seconds:.2f}s",
            f"wall time: {self.wall_seconds:.2f}s",
        ]
        # Recovery counters only appear when something actually went wrong,
        # so the healthy-path summary line is unchanged.
        for name, value in (
            ("deduped", self.deduped),
            ("resumed", self.resumed),
            ("retries", self.retries),
            ("timeouts", self.timeouts),
            ("pool crashes", self.pool_crashes),
            ("inline cells", self.inline_cells),
            ("batched cells", self.batched_cells),
            ("quarantined", self.quarantined),
            ("cache write failures", self.cache_write_failures),
        ):
            if value:
                parts.append(f"{name}: {value}")
        return "sweep stats — " + ", ".join(parts)


@dataclass
class _Flight:
    """Bookkeeping for one in-flight pool future (one cell or one chunk)."""

    #: Original positions of this flight's cells in the specs sequence
    #: (length 1 for singles, ``batch_cells`` for a full chunk).
    indices: tuple[int, ...]
    specs: tuple[CellSpec, ...]
    attempt: int
    #: Submission sequence number; the pool dispatches FIFO, so at any
    #: instant the ``workers`` lowest-seq in-flight futures are the ones
    #: that can actually be executing.
    seq: int
    #: Wall-clock deadline, armed at *dispatch* (when the flight becomes
    #: one of the ``workers`` oldest in flight), not at submit — a cell
    #: queued behind busy workers must not burn budget before it starts.
    #: A chunk's budget is ``cell_timeout_s`` per cell it carries.
    deadline: Optional[float] = None

    def label(self) -> str:
        if len(self.specs) == 1:
            return self.specs[0].label()
        return f"chunk[{self.specs[0].label()} … +{len(self.specs) - 1}]"


class SweepExecutor:
    """Fans independent cells across processes, read-through cached."""

    def __init__(
        self,
        jobs: int = 1,
        cache: Optional[ResultCache] = None,
        machine: Optional[MachineConfig] = None,
        verbose: bool = False,
        retry: Optional[RetryPolicy] = None,
        journal: Optional[SweepJournal] = None,
        cell_fn: Callable[..., tuple[RunResult, float]] = simulate_cell,
        on_cell_complete: Optional[
            Callable[[CellSpec, str, RunResult, float, bool], None]
        ] = None,
        batch_cells: int = 1,
    ) -> None:
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        if batch_cells < 1:
            raise ValueError(f"batch_cells must be >= 1, got {batch_cells}")
        self.jobs = jobs
        #: Cells per worker dispatch: one pool task simulates this many
        #: cells back-to-back on the worker's shared arena, amortizing
        #: buffer allocation / kernel loading / machine parsing across the
        #: chunk.  1 keeps the historical one-task-per-cell dispatch.
        self.batch_cells = batch_cells
        #: Lazily-built arena for inline multi-cell sessions (jobs=1).
        self._arena: Optional[KernelArena] = None
        self.cache = cache
        self.machine = machine
        self.verbose = verbose
        self.retry = retry if retry is not None else RetryPolicy()
        self.journal = journal
        #: The function actually run per cell.  Injectable so the chaos
        #: tests can dispatch crashing/hanging cells into real pool workers
        #: (monkeypatching doesn't cross a fork boundary after the pool has
        #: been created, and never crosses a spawn boundary).
        self.cell_fn = cell_fn
        #: Called as ``(spec, key, result, seconds, from_cache)`` after a
        #: cell is resolved and checkpointed (cache + journal).  The sweep
        #: service uses this for journal-backed per-cell progress streaming;
        #: ``seconds`` is 0.0 for cache hits.
        self.on_cell_complete = on_cell_complete
        self._rng = random.Random(self.retry.jitter_seed)
        #: Pool teardowns over this executor's lifetime; at
        #: ``retry.pool_failure_limit`` execution degrades to inline.
        self.pool_failures = 0
        #: Lifetime totals across every ``run_cells`` call.
        self.stats = SweepStats()

    # ----------------------------------------------------------- public API
    def run_cells(
        self, specs: Sequence[CellSpec]
    ) -> tuple[dict[CellSpec, RunResult], SweepStats]:
        """Resolve every spec (cache first, then simulation).

        Duplicate specs are computed once.  Returns the result map and the
        stats of this batch alone; lifetime totals accumulate on
        ``self.stats``.
        """
        t0 = time.perf_counter()
        batch = SweepStats(cells=len(specs))
        cache = self.cache
        evictions0 = cache.corrupt_evictions if cache is not None else 0
        writefails0 = cache.write_failures if cache is not None else 0
        unique = list(dict.fromkeys(specs))
        # Duplicates resolve once and fan back out; count them so the
        # batch identity `cells == cache_hits + simulated + deduped` holds
        # and summary() coverage adds up.
        batch.deduped = len(specs) - len(unique)
        results: dict[CellSpec, RunResult] = {}
        to_run: list[CellSpec] = []
        for spec in unique:
            key = spec.key(self.machine)
            cached = cache.get(key) if cache is not None else None
            if cached is not None:
                if self.verbose:
                    print(f"  cache hit  {spec.label()}", flush=True)
                batch.cache_hits += 1
                if self.journal is not None and key in self.journal.completed:
                    batch.resumed += 1
                results[spec] = cached
                if self.on_cell_complete is not None:
                    self.on_cell_complete(spec, key, cached, 0.0, True)
            else:
                to_run.append(spec)

        if self.verbose and batch.resumed:
            print(
                f"  resuming: {batch.resumed} cells completed by a previous "
                f"run, {len(to_run)} left to simulate",
                flush=True,
            )

        for spec, (result, seconds) in zip(to_run, self._simulate(to_run, batch)):
            results[spec] = result
            batch.simulated += 1
            batch.sim_seconds += seconds
            batch.timings.append((spec.label(), seconds))
            if self.verbose:
                print(f"  simulated  {spec.label()} in {seconds:.2f}s", flush=True)
            key = spec.key(self.machine)
            if cache is not None:
                cache.put(key, result)
            if self.journal is not None:
                self.journal.record(key, spec.label(), seconds)
            if self.on_cell_complete is not None:
                self.on_cell_complete(spec, key, result, seconds, False)

        if cache is not None:
            batch.quarantined += cache.corrupt_evictions - evictions0
            batch.cache_write_failures += cache.write_failures - writefails0
        batch.wall_seconds = time.perf_counter() - t0
        self.stats.merge(batch)
        return results, batch

    # ----------------------------------------------------------- simulation
    def _simulate(
        self, specs: Sequence[CellSpec], batch: SweepStats
    ) -> list[tuple[RunResult, float]]:
        if not specs:
            return []
        machine_dict = (
            machine_to_dict(self.machine) if self.machine is not None else None
        )
        if self.jobs == 1 or len(specs) == 1 or self._degraded:
            arena = self._inline_arena()
            out = []
            for spec in specs:
                out.append(
                    self._run_inline(
                        spec, machine_dict, batch,
                        degraded=self._degraded, arena=arena,
                    )
                )
                if arena is not None:
                    batch.batched_cells += 1
            return out
        return self._run_pool(specs, machine_dict, batch)

    def _inline_arena(self) -> Optional[KernelArena]:
        """The executor-lifetime arena for inline multi-cell sessions.

        Only used with ``batch_cells > 1`` and the real ``simulate_cell``
        (injected chaos ``cell_fn``s keep their two-argument signature),
        so ``batch_cells=1`` preserves historical inline behavior exactly.
        """
        if self.batch_cells <= 1 or self.cell_fn is not simulate_cell:
            return None
        if self._arena is None:
            self._arena = KernelArena()
        return self._arena

    @property
    def _degraded(self) -> bool:
        return self.pool_failures >= self.retry.pool_failure_limit

    def _run_inline(
        self,
        spec: CellSpec,
        machine_dict: Optional[dict[str, Any]],
        batch: SweepStats,
        degraded: bool = False,
        arena: Optional[KernelArena] = None,
    ) -> tuple[RunResult, float]:
        """Run one cell in-process with exception retries (no timeout —
        a wall-clock limit cannot preempt our own process)."""
        policy = self.retry
        attempt = 1
        if degraded:
            batch.inline_cells += 1
        while True:
            try:
                if arena is not None:
                    return self.cell_fn(spec, machine_dict, arena=arena)
                return self.cell_fn(spec, machine_dict)
            except _NON_RETRYABLE:
                raise
            except Exception:
                if attempt >= policy.max_attempts:
                    raise
                batch.retries += 1
                if self.verbose:
                    print(
                        f"  retry      {spec.label()} "
                        f"(attempt {attempt + 1}/{policy.max_attempts})",
                        flush=True,
                    )
                time.sleep(policy.backoff_s(attempt, self._rng))
                attempt += 1

    def _new_pool(self, workers: int) -> ProcessPoolExecutor:
        return ProcessPoolExecutor(max_workers=workers)

    @staticmethod
    def _kill_pool(pool: ProcessPoolExecutor) -> None:
        """Tear a pool down hard — its workers may be hung or dead."""
        processes = getattr(pool, "_processes", None) or {}
        for proc in list(processes.values()):
            try:
                proc.terminate()
            except (OSError, ValueError):
                pass
        pool.shutdown(wait=False, cancel_futures=True)

    def _run_pool(
        self,
        specs: Sequence[CellSpec],
        machine_dict: Optional[dict[str, Any]],
        batch: SweepStats,
    ) -> list[tuple[RunResult, float]]:
        """Resolve cells through a self-healing process pool.

        The work queue holds ``(indices, specs, attempt)`` flights — one
        cell each with ``batch_cells=1``, chunks of consecutive cells
        otherwise; completed indices leave it permanently, so a pool
        rebuild re-dispatches only the cells that were genuinely lost.
        Any chunk that fails, crashes its worker, or exceeds its (per-cell
        scaled) deadline is *decomposed* into single-cell flights so that
        retries isolate the culprit and error surfacing matches unbatched
        execution exactly.
        """
        policy = self.retry
        size = max(1, self.batch_cells)
        results: dict[int, tuple[RunResult, float]] = {}
        queue: deque[tuple[tuple[int, ...], tuple[CellSpec, ...], int]] = deque(
            (
                tuple(range(i, min(i + size, len(specs)))),
                tuple(specs[i : i + size]),
                1,
            )
            for i in range(0, len(specs), size)
        )
        workers = min(self.jobs, len(queue))
        pool: Optional[ProcessPoolExecutor] = self._new_pool(workers)
        inflight: dict[Future, _Flight] = {}
        next_seq = 0

        def submit_ready() -> None:
            nonlocal next_seq
            assert pool is not None
            while queue and len(inflight) < 2 * workers:
                indices, chunk, attempt = queue.popleft()
                if len(chunk) == 1:
                    fut = pool.submit(self.cell_fn, chunk[0], machine_dict)
                else:
                    fut = pool.submit(
                        simulate_cell_batch, chunk, machine_dict, self.cell_fn
                    )
                inflight[fut] = _Flight(indices, chunk, attempt, next_seq)
                next_seq += 1

        def arm_deadlines() -> None:
            """Start wall clocks for the flights that can actually be
            running.

            Up to ``2 * workers`` futures are submitted to keep workers
            fed, but only the ``workers`` oldest of them hold a worker at
            any instant (the pool dispatches FIFO).  Arming a deadline at
            submit time would charge queue wait against the cell's budget
            and let an oversubscribed sweep declare never-started cells
            overdue; arm at dispatch instead.
            """
            if policy.cell_timeout_s is None:
                return
            now = time.monotonic()
            running = sorted(inflight.values(), key=lambda f: f.seq)[:workers]
            for flight in running:
                if flight.deadline is None:
                    flight.deadline = (
                        now + policy.cell_timeout_s * len(flight.specs)
                    )

        def decompose(flight: _Flight, attempt: int) -> None:
            """Re-queue a failed chunk as single-cell flights."""
            for index, spec in zip(flight.indices, flight.specs):
                if index not in results:
                    queue.append(((index,), (spec,), attempt))

        def requeue_inflight(overdue: set[Future], cause: str) -> None:
            """Return lost in-flight work to the queue.

            Overdue (or crash-implicated) flights pay an attempt — and
            chunks additionally decompose to singles, so the next attempt
            isolates the hung/killing cell under its own deadline;
            innocent bystanders of the same pool teardown retry for free
            (chunks intact), with a fresh wall clock armed when the
            rebuilt pool dispatches them.
            """
            for fut, flight in sorted(
                inflight.items(), key=lambda item: item[1].indices[0]
            ):
                if fut in overdue:
                    if flight.attempt >= policy.max_attempts:
                        if cause == "timeout":
                            raise TimeoutError(
                                f"cell {flight.label()} exceeded "
                                f"{policy.cell_timeout_s}s wall-clock in each "
                                f"of {policy.max_attempts} attempts"
                            )
                        raise CellFailedError(
                            f"cell {flight.label()} was in flight during "
                            f"a worker-pool crash in each of "
                            f"{policy.max_attempts} attempts; the cell is "
                            "likely killing its workers (e.g. OOM)"
                        )
                    decompose(flight, flight.attempt + 1)
                else:
                    queue.append((flight.indices, flight.specs, flight.attempt))
            inflight.clear()

        def teardown_and_recover(overdue: set[Future], cause: str) -> None:
            nonlocal pool
            assert pool is not None
            self._kill_pool(pool)
            self.pool_failures += 1
            batch.pool_crashes += 1
            requeue_inflight(overdue, cause)
            pool = self._new_pool(workers) if not self._degraded else None
            if self.verbose:
                mode = "inline execution" if pool is None else "a fresh pool"
                print(f"  pool lost; re-dispatching {len(queue)} cells via {mode}",
                      flush=True)

        try:
            while queue or inflight:
                if pool is None:
                    # Degraded: the pool kept dying — finish inline.
                    arena = self._inline_arena()
                    while queue:
                        indices, chunk, _ = queue.popleft()
                        for index, spec in zip(indices, chunk):
                            if index not in results:
                                results[index] = self._run_inline(
                                    spec, machine_dict, batch,
                                    degraded=True, arena=arena,
                                )
                                if arena is not None:
                                    batch.batched_cells += 1
                    break
                submit_ready()
                arm_deadlines()
                timeout: Optional[float] = None
                armed = [
                    f.deadline for f in inflight.values() if f.deadline is not None
                ]
                if armed:
                    timeout = max(0.0, min(armed) - time.monotonic())
                done, _ = wait(
                    set(inflight), timeout=timeout, return_when=FIRST_COMPLETED
                )

                if not done:
                    # Deadline expired with nothing finished: some cell hung.
                    now = time.monotonic()
                    overdue = {
                        fut
                        for fut, flight in inflight.items()
                        if flight.deadline is not None and now >= flight.deadline
                    }
                    if not overdue:
                        continue
                    batch.timeouts += len(overdue)
                    if self.verbose:
                        for flight in sorted(
                            (inflight[fut] for fut in overdue),
                            key=lambda f: f.indices[0],
                        ):
                            budget = policy.cell_timeout_s * len(flight.specs)
                            print(
                                f"  timeout    {flight.label()} "
                                f"after {budget}s",
                                flush=True,
                            )
                    teardown_and_recover(overdue, "timeout")
                    continue

                pool_broke = False
                # Deterministic handling order (and lint-clean: `done` is a
                # set), so retry backoff draws don't depend on hash order.
                for fut in sorted(done, key=lambda f: inflight[f].indices[0]):
                    flight = inflight.pop(fut)
                    try:
                        out = fut.result()
                    except BrokenProcessPool:
                        # A worker died (OOM kill, segfault).  Every other
                        # in-flight future is doomed too; implicate this one
                        # and rebuild.
                        inflight[fut] = flight
                        teardown_and_recover({fut}, "crash")
                        pool_broke = True
                        break
                    except Exception as exc:
                        if len(flight.specs) > 1:
                            # A chunk failure names no culprit: decompose
                            # at the *same* attempt so deterministic errors
                            # re-raise from the single that owns them and
                            # innocent chunk-mates aren't charged.
                            if self.verbose:
                                print(
                                    f"  decompose  {flight.label()} after "
                                    f"{type(exc).__name__}; retrying its "
                                    f"{len(flight.specs)} cells singly",
                                    flush=True,
                                )
                            decompose(flight, flight.attempt)
                            continue
                        if isinstance(exc, _NON_RETRYABLE):
                            raise
                        if flight.attempt >= policy.max_attempts:
                            raise
                        batch.retries += 1
                        if self.verbose:
                            print(
                                f"  retry      {flight.label()} (attempt "
                                f"{flight.attempt + 1}/{policy.max_attempts})",
                                flush=True,
                            )
                        time.sleep(policy.backoff_s(flight.attempt, self._rng))
                        queue.append(
                            (flight.indices, flight.specs, flight.attempt + 1)
                        )
                        continue
                    if len(flight.specs) == 1:
                        results[flight.indices[0]] = out
                    else:
                        for index, cell_result in zip(flight.indices, out):
                            results[index] = cell_result
                        batch.batched_cells += len(flight.specs)
                if pool_broke:
                    continue
        finally:
            if pool is not None:
                pool.shutdown(wait=False, cancel_futures=True)

        return [results[i] for i in range(len(specs))]
