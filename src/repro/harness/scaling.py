"""Core-count scaling study.

The paper's abstract: "The cost of reconfiguring hardware by means of a
software-only solution rises with the number of cores due to lock
contention and reconfiguration overhead.  Therefore, novel architectural
support is proposed to eliminate these overheads on future manycore
systems."

This harness quantifies that claim in the reproduction: sweep the machine
size (with the workload scaled proportionally so per-core pressure stays
constant), run software CATA and CATA+RSU, and report how lock contention
and the RSU's advantage evolve.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..analysis.reporting import render_table
from ..core.policies import run_policy
from ..sim.config import default_machine
from ..sim.engine import US
from ..workloads import build_program

__all__ = ["ScalingRow", "run_scaling_study", "render_scaling_study"]


@dataclass(frozen=True)
class ScalingRow:
    core_count: int
    budget: int
    cata_speedup: float
    rsu_speedup: float
    cata_avg_lock_wait_us: float
    cata_max_lock_wait_us: float
    cata_reconfig_overhead_pct: float

    @property
    def rsu_advantage_pct(self) -> float:
        """RSU's extra speedup over software CATA, in percentage points."""
        return 100.0 * (self.rsu_speedup - self.cata_speedup)


def run_scaling_study(
    core_counts: Sequence[int] = (8, 16, 32, 64),
    workload: str = "fluidanimate",
    base_scale: float = 0.5,
    seeds: Sequence[int] = (1,),
) -> list[ScalingRow]:
    """One row per machine size; workload scaled with the core count.

    With several ``seeds``, speedups and contention statistics are averaged
    across seed-distinct program instances.
    """
    if not seeds:
        raise ValueError("at least one seed is required")
    rows = []
    for cores in core_counts:
        machine = default_machine().with_cores(cores)
        budget = max(1, cores // 4)
        scale = base_scale * cores / 32.0
        cata_su, rsu_su, avg_waits, max_waits, ovh = [], [], [], [], []
        for seed in seeds:

            def fresh():
                return build_program(
                    workload, scale=scale, seed=seed, machine=machine
                )

            fifo = run_policy(fresh(), "fifo", machine=machine,
                              fast_cores=budget, trace_enabled=False)
            cata = run_policy(fresh(), "cata", machine=machine,
                              fast_cores=budget, trace_enabled=False)
            rsu = run_policy(fresh(), "cata_rsu", machine=machine,
                             fast_cores=budget, trace_enabled=False)
            cata_su.append(fifo.exec_time_ns / cata.exec_time_ns)
            rsu_su.append(fifo.exec_time_ns / rsu.exec_time_ns)
            avg_waits.append(
                cata.total_lock_wait_ns / cata.reconfig_count
                if cata.reconfig_count
                else 0.0
            )
            max_waits.append(cata.max_lock_wait_ns)
            ovh.append(100.0 * cata.reconfig_overhead_fraction(cores))
        n = len(seeds)
        rows.append(
            ScalingRow(
                core_count=cores,
                budget=budget,
                cata_speedup=sum(cata_su) / n,
                rsu_speedup=sum(rsu_su) / n,
                cata_avg_lock_wait_us=sum(avg_waits) / n / US,
                cata_max_lock_wait_us=max(max_waits) / US,
                cata_reconfig_overhead_pct=sum(ovh) / n,
            )
        )
    return rows


def render_scaling_study(rows: Sequence[ScalingRow], workload: str = "") -> str:
    return render_table(
        [
            "cores",
            "budget",
            "CATA speedup",
            "RSU speedup",
            "RSU adv (pp)",
            "avg lock wait (us)",
            "max lock wait (us)",
            "reconfig ovh (%)",
        ],
        [
            (
                r.core_count,
                r.budget,
                r.cata_speedup,
                r.rsu_speedup,
                r.rsu_advantage_pct,
                r.cata_avg_lock_wait_us,
                r.cata_max_lock_wait_us,
                r.cata_reconfig_overhead_pct,
            )
            for r in rows
        ],
        title=f"Core-count scaling of software vs hardware reconfiguration"
        + (f" ({workload})" if workload else ""),
    )
