"""Sweep journal: append-only JSONL checkpoint of completed cells.

The persistent :class:`~repro.harness.cache.ResultCache` already makes an
interrupted sweep resumable — every finished cell's result survives on
disk.  The journal adds the *ledger*: one line per completed cell,
flushed and fsynced at completion time, so a resumed invocation can tell
exactly which cells the previous (possibly SIGKILLed) run finished, report
"resuming N of M", and distinguish a cache hit that is a genuine resume
from one that predates the sweep.

Format: one JSON object per line — ``{"key": ..., "label": ...,
"seconds": ...}``.  The loader is deliberately tolerant: a torn final line
(the process died mid-append) or any undecodable line is skipped, because
the journal is an optimization over the cache, never an authority.
"""

from __future__ import annotations

import json
import os
from typing import Optional, TextIO

__all__ = ["SweepJournal"]


class SweepJournal:
    """Append-only completion ledger for one sweep directory."""

    def __init__(self, path: str) -> None:
        self.path = path
        self._fh: Optional[TextIO] = None
        self.recorded = 0
        #: Torn/garbage lines skipped by the loader.
        self.skipped_lines = 0
        #: Per-key simulation seconds, for entries that carried one; lets
        #: a resumed run (or the sweep service) report how long a cell
        #: took even when it was finished by an earlier process.
        self.seconds: dict[str, float] = {}
        #: Keys found on disk when the journal was opened (prior runs).
        self.completed: set[str] = self._load()

    def _load(self) -> set[str]:
        done: set[str] = set()
        try:
            with open(self.path, encoding="utf-8") as fh:
                for line in fh:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        entry = json.loads(line)
                        key = entry["key"]
                    except (json.JSONDecodeError, KeyError, TypeError):
                        # Torn tail from a killed writer; skip, don't crash.
                        self.skipped_lines += 1
                        continue
                    if isinstance(key, str):
                        done.add(key)
                        if isinstance(entry.get("seconds"), (int, float)):
                            self.seconds[key] = float(entry["seconds"])
        except FileNotFoundError:
            pass
        except OSError:
            pass
        return done

    def record(self, key: str, label: str, seconds: float) -> None:
        """Append one completed cell; crash-safe (flush + fsync)."""
        if key in self.completed:
            return
        try:
            if self._fh is None:
                os.makedirs(os.path.dirname(self.path) or ".", exist_ok=True)
                self._fh = open(self.path, "a", encoding="utf-8")
                # A writer killed mid-append leaves a torn line with no
                # newline; start on a fresh line so the next record isn't
                # glued onto the garbage and lost with it.
                if self._fh.tell() > 0 and not self._ends_with_newline():
                    self._fh.write("\n")
            self._fh.write(
                json.dumps(
                    {"key": key, "label": label, "seconds": round(seconds, 6)},
                    sort_keys=True,
                )
                + "\n"
            )
            self._fh.flush()
            os.fsync(self._fh.fileno())
        except OSError:
            # An unwritable journal degrades resume reporting, nothing else.
            return
        self.completed.add(key)
        self.seconds[key] = round(seconds, 6)
        self.recorded += 1

    def _ends_with_newline(self) -> bool:
        with open(self.path, "rb") as fh:
            fh.seek(-1, os.SEEK_END)
            return fh.read(1) == b"\n"

    def close(self) -> None:
        if self._fh is not None:
            try:
                self._fh.close()
            except OSError:
                pass
            self._fh = None

    def __enter__(self) -> "SweepJournal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
