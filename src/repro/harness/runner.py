"""Experiment sweep driver.

Runs (workload × policy × fast-core-count) grids, normalizes against the
FIFO baseline of the same fast-core count, and returns both the raw
:class:`~repro.runtime.system.RunResult` objects and the figure-ready
:class:`~repro.analysis.metrics.NormalizedPoint` lists.

Results are memoized per (workload, policy, fast, scale, machine, seed)
within one :class:`GridRunner` — Figure 4 and Figure 5, which share the
CATA column, do not re-simulate shared cells — and independent cells fan
out across a process pool (``jobs``) with an optional persistent on-disk
cache (``cache_dir``) underneath the memo; see
:mod:`repro.harness.executor` and :mod:`repro.harness.cache`.
"""

from __future__ import annotations

import warnings
from typing import Optional, Sequence

import os

from ..analysis.metrics import NormalizedPoint, normalize
from ..runtime.system import RunResult
from ..sim.config import MachineConfig
from .cache import ResultCache
from .executor import CellSpec, RetryPolicy, SweepExecutor, SweepStats
from .journal import SweepJournal

__all__ = ["GridRunner", "GridResult"]

#: Fast-core counts of the paper's evaluation (8, 16, 24 of 32).
PAPER_FAST_COUNTS: tuple[int, ...] = (8, 16, 24)
#: Benchmark order of the paper's figures.
PAPER_WORKLOADS: tuple[str, ...] = (
    "blackscholes",
    "swaptions",
    "fluidanimate",
    "bodytrack",
    "dedup",
    "ferret",
)


class GridResult:
    """Raw and normalized results of one sweep.

    Points are keyed by ``(workload, policy, fast)`` — inserting the same
    cell twice (e.g. two ``run_grid`` calls merged, or FIFO baselines
    shared between figures) replaces rather than duplicates, and
    :meth:`point` is an O(1) lookup.
    """

    def __init__(self) -> None:
        self.results: dict[tuple[str, str, int], RunResult] = {}
        self._points: dict[tuple[str, str, int], NormalizedPoint] = {}
        #: Cell accounting of the ``run_grid`` call that produced this.
        self.stats: SweepStats = SweepStats()

    @property
    def points(self) -> list[NormalizedPoint]:
        return list(self._points.values())

    def add_point(self, p: NormalizedPoint) -> None:
        self._points[(p.workload, p.policy, p.fast_cores)] = p

    def result(self, workload: str, policy: str, fast: int) -> RunResult:
        return self.results[(workload, policy, fast)]

    def point(self, workload: str, policy: str, fast: int) -> NormalizedPoint:
        return self._points[(workload, policy, fast)]

    def to_csv(self) -> str:
        """Figure points as CSV (one row per bar) for external plotting."""
        lines = ["workload,policy,fast_cores,speedup,normalized_edp,exec_time_ns,energy_j"]
        for p in sorted(
            self.points, key=lambda p: (p.workload, p.fast_cores, p.policy)
        ):
            lines.append(
                f"{p.workload},{p.policy},{p.fast_cores},"
                f"{p.speedup:.6f},{p.normalized_edp:.6f},"
                f"{p.exec_time_ns:.1f},{p.energy_j:.6f}"
            )
        return "\n".join(lines)

    def write_csv(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.to_csv() + "\n")


class GridRunner:
    """Memoizing sweep runner over a parallel, disk-cached executor."""

    def __init__(
        self,
        scale: float = 1.0,
        seed: int = 1,
        seeds: Optional[Sequence[int]] = None,
        machine: Optional[MachineConfig] = None,
        trace_enabled: bool = False,
        verbose: bool = False,
        jobs: int = 1,
        cache_dir: Optional[str] = None,
        faults: str = "off",
        retry: Optional[RetryPolicy] = None,
        cell_timeout_s: Optional[float] = None,
        batch_cells: int = 1,
        arrivals: Optional[str] = None,
        tenants: Optional[str] = None,
    ) -> None:
        """``seeds`` enables multi-seed averaging: each grid cell is
        simulated once per seed and the normalized ratios are averaged
        (each seed produces a different random program instance, so this is
        the repeated-measurement average of the paper's methodology).

        ``jobs`` fans independent cells across that many worker processes;
        results are bitwise-identical to ``jobs=1``.  ``cache_dir`` backs
        the in-memory memo with a persistent on-disk result cache and a
        completion journal (``<cache_dir>/journal.jsonl``) so a killed
        sweep resumes re-simulating only the unfinished cells.

        ``faults`` injects deterministic machine faults into every cell
        (see :mod:`repro.sim.faults`); ``"off"`` keeps the machine
        pristine.  ``retry``/``cell_timeout_s`` tune crash recovery; a
        bare ``cell_timeout_s`` is shorthand for ``RetryPolicy`` with that
        wall-clock limit.  ``batch_cells`` dispatches that many cells per
        worker task, simulated back-to-back on shared kernel buffers
        (bitwise-identical results; amortizes per-cell setup).

        ``arrivals`` switches every cell to open-loop admission: each
        workload runs as a single tenant under that arrival spec (e.g.
        ``"poisson(rate=0.25,jobs=4)"``).  ``tenants`` instead pins one
        full multi-tenant scenario spec for every cell (the per-cell
        workload becomes a display label).  Mutually exclusive.
        """
        if arrivals is not None and tenants is not None:
            raise ValueError("pass either arrivals= or tenants=, not both")
        self.arrivals = arrivals
        self._tenants_scenario: Optional[str] = None
        if tenants is not None:
            from ..workloads.scenario import parse_scenario

            self._tenants_scenario = parse_scenario(tenants).canonical()
        #: Per-workload canonicalized single-tenant scenario (arrivals mode).
        self._arrival_scenarios: dict[str, str] = {}
        self.scale = scale
        raw: tuple[int, ...] = tuple(seeds) if seeds is not None else (seed,)
        if not raw:
            raise ValueError(
                "at least one seed is required (seeds=() would make every "
                "per-seed average empty)"
            )
        deduped = tuple(dict.fromkeys(raw))
        if len(deduped) != len(raw):
            warnings.warn(
                f"duplicate seeds {raw} deduplicated to {deduped}; a repeated "
                "seed re-runs the identical simulation and would double-count "
                "it in per-seed averages",
                stacklevel=2,
            )
        self.seeds: tuple[int, ...] = deduped
        self.machine = machine
        self.trace_enabled = trace_enabled
        self.verbose = verbose
        self.faults = faults
        if retry is None and cell_timeout_s is not None:
            retry = RetryPolicy(cell_timeout_s=cell_timeout_s)
        self.executor = SweepExecutor(
            jobs=jobs,
            cache=ResultCache(cache_dir) if cache_dir is not None else None,
            machine=machine,
            verbose=verbose,
            retry=retry,
            journal=(
                SweepJournal(os.path.join(cache_dir, "journal.jsonl"))
                if cache_dir is not None
                else None
            ),
            batch_cells=batch_cells,
        )
        #: In-memory memo: full cell key (workload, policy, fast, seed,
        #: scale, machine fingerprint, schema version) -> result.  A
        #: read-through layer over the executor's disk cache.
        self._cache: dict[str, RunResult] = {}

    @property
    def seed(self) -> int:
        return self.seeds[0]

    def _scenario_for(self, workload: str) -> str:
        if self._tenants_scenario is not None:
            return self._tenants_scenario
        if self.arrivals is None:
            return "off"
        cached = self._arrival_scenarios.get(workload)
        if cached is None:
            from ..workloads.scenario import parse_scenario

            cached = parse_scenario(f"{workload}@{self.arrivals}").canonical()
            self._arrival_scenarios[workload] = cached
        return cached

    def _spec(self, workload: str, policy: str, fast: int, seed: int) -> CellSpec:
        return CellSpec(
            workload=workload,
            policy=policy,
            fast=fast,
            seed=seed,
            scale=self.scale,
            trace_enabled=self.trace_enabled,
            faults=self.faults,
            scenario=self._scenario_for(workload),
        )

    def run_one(
        self, workload: str, policy: str, fast: int, seed: Optional[int] = None
    ) -> RunResult:
        if seed is None:
            seed = self.seeds[0]
        spec = self._spec(workload, policy, fast, seed)
        key = spec.key(self.machine)
        if key not in self._cache:
            results, _ = self.executor.run_cells([spec])
            self._cache[key] = results[spec]
        return self._cache[key]

    def _prefetch(self, specs: Sequence[CellSpec]) -> SweepStats:
        """Resolve every spec into the memo, fanning misses out in one batch."""
        unique = list(dict.fromkeys(specs))
        missing = [s for s in unique if s.key(self.machine) not in self._cache]
        results, batch = self.executor.run_cells(missing)
        for spec, result in results.items():
            self._cache[spec.key(self.machine)] = result
        stats = SweepStats(
            cells=len(unique),
            memo_hits=len(unique) - len(missing),
            cache_hits=batch.cache_hits,
            simulated=batch.simulated,
            sim_seconds=batch.sim_seconds,
            wall_seconds=batch.wall_seconds,
            resumed=batch.resumed,
            retries=batch.retries,
            timeouts=batch.timeouts,
            pool_crashes=batch.pool_crashes,
            inline_cells=batch.inline_cells,
            batched_cells=batch.batched_cells,
            quarantined=batch.quarantined,
            cache_write_failures=batch.cache_write_failures,
            timings=list(batch.timings),
        )
        return stats

    def _mean_point(self, per_seed: Sequence[NormalizedPoint]) -> NormalizedPoint:
        if not per_seed:
            raise ValueError("cannot average an empty per-seed point list")
        n = len(per_seed)
        first = per_seed[0]
        return NormalizedPoint(
            workload=first.workload,
            policy=first.policy,
            fast_cores=first.fast_cores,
            speedup=sum(p.speedup for p in per_seed) / n,
            normalized_edp=sum(p.normalized_edp for p in per_seed) / n,
            exec_time_ns=sum(p.exec_time_ns for p in per_seed) / n,
            energy_j=sum(p.energy_j for p in per_seed) / n,
        )

    def run_grid(
        self,
        policies: Sequence[str],
        workloads: Sequence[str] = PAPER_WORKLOADS,
        fast_counts: Sequence[int] = PAPER_FAST_COUNTS,
    ) -> GridResult:
        """Run the full grid; FIFO baselines are always included.

        With multiple seeds, each returned point is the per-seed-normalized
        average; ``results`` keeps the first seed's raw runs.  All cells
        missing from the memo and disk cache are simulated up front in one
        parallel batch; ``GridResult.stats`` accounts for every cell.
        """
        grid = GridResult()
        ordered_policies = ["fifo"] + [p for p in policies if p != "fifo"]
        specs = [
            self._spec(workload, policy, fast, s)
            for workload in workloads
            for fast in fast_counts
            for policy in ordered_policies
            for s in self.seeds
        ]
        grid.stats = self._prefetch(specs)
        if self.verbose:
            print(grid.stats.summary(), flush=True)

        for workload in workloads:
            for fast in fast_counts:
                baselines = {
                    s: self.run_one(workload, "fifo", fast, s) for s in self.seeds
                }
                grid.results[(workload, "fifo", fast)] = baselines[self.seeds[0]]
                grid.add_point(
                    self._mean_point(
                        [normalize(b, b, fast) for b in baselines.values()]
                    )
                )
                for policy in ordered_policies:
                    if policy == "fifo":
                        continue
                    per_seed = []
                    for s in self.seeds:
                        result = self.run_one(workload, policy, fast, s)
                        per_seed.append(normalize(baselines[s], result, fast))
                    grid.results[(workload, policy, fast)] = self.run_one(
                        workload, policy, fast, self.seeds[0]
                    )
                    grid.add_point(self._mean_point(per_seed))
        return grid
