"""Experiment sweep driver.

Runs (workload × policy × fast-core-count) grids, normalizes against the
FIFO baseline of the same fast-core count, and returns both the raw
:class:`~repro.runtime.system.RunResult` objects and the figure-ready
:class:`~repro.analysis.metrics.NormalizedPoint` lists.

Results are memoized per (workload, policy, fast, scale, seed) within one
:class:`GridRunner`, so Figure 4 and Figure 5 — which share the CATA column
— do not re-simulate shared cells.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from ..analysis.metrics import NormalizedPoint, normalize
from ..core.policies import run_policy
from ..runtime.system import RunResult
from ..sim.config import MachineConfig
from ..workloads import build_program

__all__ = ["GridRunner", "GridResult"]

#: Fast-core counts of the paper's evaluation (8, 16, 24 of 32).
PAPER_FAST_COUNTS: tuple[int, ...] = (8, 16, 24)
#: Benchmark order of the paper's figures.
PAPER_WORKLOADS: tuple[str, ...] = (
    "blackscholes",
    "swaptions",
    "fluidanimate",
    "bodytrack",
    "dedup",
    "ferret",
)


@dataclass
class GridResult:
    """Raw and normalized results of one sweep."""

    results: dict[tuple[str, str, int], RunResult] = field(default_factory=dict)
    points: list[NormalizedPoint] = field(default_factory=list)

    def result(self, workload: str, policy: str, fast: int) -> RunResult:
        return self.results[(workload, policy, fast)]

    def point(self, workload: str, policy: str, fast: int) -> NormalizedPoint:
        for p in self.points:
            if (p.workload, p.policy, p.fast_cores) == (workload, policy, fast):
                return p
        raise KeyError((workload, policy, fast))

    def to_csv(self) -> str:
        """Figure points as CSV (one row per bar) for external plotting."""
        lines = ["workload,policy,fast_cores,speedup,normalized_edp,exec_time_ns,energy_j"]
        for p in sorted(
            self.points, key=lambda p: (p.workload, p.fast_cores, p.policy)
        ):
            lines.append(
                f"{p.workload},{p.policy},{p.fast_cores},"
                f"{p.speedup:.6f},{p.normalized_edp:.6f},"
                f"{p.exec_time_ns:.1f},{p.energy_j:.6f}"
            )
        return "\n".join(lines)

    def write_csv(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.to_csv() + "\n")


class GridRunner:
    """Memoizing sweep runner."""

    def __init__(
        self,
        scale: float = 1.0,
        seed: int = 1,
        seeds: Optional[Sequence[int]] = None,
        machine: Optional[MachineConfig] = None,
        trace_enabled: bool = False,
        verbose: bool = False,
    ) -> None:
        """``seeds`` enables multi-seed averaging: each grid cell is
        simulated once per seed and the normalized ratios are averaged
        (each seed produces a different random program instance, so this is
        the repeated-measurement average of the paper's methodology)."""
        self.scale = scale
        self.seeds: tuple[int, ...] = tuple(seeds) if seeds is not None else (seed,)
        if not self.seeds:
            raise ValueError("at least one seed is required")
        self.machine = machine
        self.trace_enabled = trace_enabled
        self.verbose = verbose
        self._cache: dict[tuple[str, str, int, int], RunResult] = {}

    @property
    def seed(self) -> int:
        return self.seeds[0]

    def run_one(
        self, workload: str, policy: str, fast: int, seed: Optional[int] = None
    ) -> RunResult:
        if seed is None:
            seed = self.seeds[0]
        key = (workload, policy, fast, seed)
        if key not in self._cache:
            program = build_program(
                workload, scale=self.scale, seed=seed, machine=self.machine
            )
            if self.verbose:
                print(f"  simulating {workload}/{policy}@{fast} seed={seed} ...", flush=True)
            self._cache[key] = run_policy(
                program,
                policy,
                machine=self.machine,
                fast_cores=fast,
                seed=seed,
                trace_enabled=self.trace_enabled,
            )
        return self._cache[key]

    def _mean_point(self, per_seed: list[NormalizedPoint]) -> NormalizedPoint:
        n = len(per_seed)
        first = per_seed[0]
        return NormalizedPoint(
            workload=first.workload,
            policy=first.policy,
            fast_cores=first.fast_cores,
            speedup=sum(p.speedup for p in per_seed) / n,
            normalized_edp=sum(p.normalized_edp for p in per_seed) / n,
            exec_time_ns=sum(p.exec_time_ns for p in per_seed) / n,
            energy_j=sum(p.energy_j for p in per_seed) / n,
        )

    def run_grid(
        self,
        policies: Sequence[str],
        workloads: Sequence[str] = PAPER_WORKLOADS,
        fast_counts: Sequence[int] = PAPER_FAST_COUNTS,
    ) -> GridResult:
        """Run the full grid; FIFO baselines are always included.

        With multiple seeds, each returned point is the per-seed-normalized
        average; ``results`` keeps the first seed's raw runs.
        """
        grid = GridResult()
        for workload in workloads:
            for fast in fast_counts:
                baselines = {
                    s: self.run_one(workload, "fifo", fast, s) for s in self.seeds
                }
                grid.results[(workload, "fifo", fast)] = baselines[self.seeds[0]]
                grid.points.append(
                    self._mean_point(
                        [normalize(b, b, fast) for b in baselines.values()]
                    )
                )
                for policy in policies:
                    if policy == "fifo":
                        continue
                    per_seed = []
                    for s in self.seeds:
                        result = self.run_one(workload, policy, fast, s)
                        per_seed.append(normalize(baselines[s], result, fast))
                    grid.results[(workload, policy, fast)] = self._cache[
                        (workload, policy, fast, self.seeds[0])
                    ]
                    grid.points.append(self._mean_point(per_seed))
        return grid
