"""Experiment registry — every reproducible artifact, addressable by id.

One descriptor per paper artifact (and per extension study), each knowing
how to run itself and render its result.  The CLI's ``experiments`` command
and external scripts drive reproduction through this table instead of
importing individual harness modules.  Sweep-backed experiments honor the
:class:`RunContext` parallelism (``jobs``) and persistent-cache
(``cache_dir``) settings.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from .degradation import run_degradation
from .estimators import run_estimator_study
from .latency import run_latency
from .figure4 import run_figure4
from .figure5 import run_figure5
from .rsu_overhead import render_rsu_overhead, run_rsu_overhead
from .runner import GridRunner
from .scaling import render_scaling_study, run_scaling_study
from .section5c import render_section5c, run_section5c
from .table1 import render_table1

__all__ = [
    "Experiment",
    "EXPERIMENTS",
    "RunContext",
    "run_experiment",
    "list_experiments",
]


@dataclass(frozen=True)
class RunContext:
    """Execution settings shared by every sweep-backed experiment."""

    scale: float = 1.0
    seeds: tuple[int, ...] = (1, 2, 3)
    jobs: int = 1
    cache_dir: Optional[str] = None
    verbose: bool = False
    batch_cells: int = 1

    def runner(self, **overrides) -> GridRunner:
        kwargs = dict(
            scale=self.scale,
            seeds=self.seeds,
            jobs=self.jobs,
            cache_dir=self.cache_dir,
            verbose=self.verbose,
            batch_cells=self.batch_cells,
        )
        kwargs.update(overrides)
        return GridRunner(**kwargs)


@dataclass(frozen=True)
class Experiment:
    """One regenerable artifact."""

    exp_id: str
    paper_artifact: str
    description: str
    #: context -> rendered text.  ``asserts`` names what is checked.
    run: Callable[[RunContext], str]
    asserts: str = ""


def _table1(ctx: RunContext) -> str:
    return render_table1()


def _figure4(ctx: RunContext) -> str:
    return run_figure4(ctx.runner()).render()


def _figure5(ctx: RunContext) -> str:
    return run_figure5(ctx.runner()).render()


def _section5c(ctx: RunContext) -> str:
    runner = ctx.runner(seeds=ctx.seeds[:1], trace_enabled=True)
    return render_section5c(run_section5c(runner, fast_cores=16))


def _rsu(ctx: RunContext) -> str:
    return render_rsu_overhead(run_rsu_overhead())


def _estimators(ctx: RunContext) -> str:
    return run_estimator_study(ctx.runner()).render()


def _degradation(ctx: RunContext) -> str:
    return run_degradation(
        seed=ctx.seeds[0],
        scale=ctx.scale * 0.3,
        jobs=ctx.jobs,
        cache_dir=ctx.cache_dir,
        verbose=ctx.verbose,
        batch_cells=ctx.batch_cells,
    ).render()


def _latency(ctx: RunContext) -> str:
    return run_latency(
        seed=ctx.seeds[0],
        scale=ctx.scale * 0.3,
        jobs=ctx.jobs,
        cache_dir=ctx.cache_dir,
        verbose=ctx.verbose,
        batch_cells=ctx.batch_cells,
    ).render()


def _scaling(ctx: RunContext) -> str:
    rows = run_scaling_study(base_scale=ctx.scale * 0.7, seeds=ctx.seeds)
    return render_scaling_study(rows, "fluidanimate")


EXPERIMENTS: tuple[Experiment, ...] = (
    Experiment(
        exp_id="table1",
        paper_artifact="Table I",
        description="Processor configuration of the simulated machine",
        run=_table1,
        asserts="row-for-row transcription of the paper's table",
    ),
    Experiment(
        exp_id="figure4",
        paper_artifact="Figure 4",
        description="FIFO / CATS+BL / CATS+SA / CATA speedup and EDP",
        run=_figure4,
        asserts="18 Section V-A/V-B shape claims",
    ),
    Experiment(
        exp_id="figure5",
        paper_artifact="Figure 5",
        description="CATA / CATA+RSU / TurboMode speedup and EDP",
        run=_figure5,
        asserts="12 Section V-C/V-D shape claims",
    ),
    Experiment(
        exp_id="section5c",
        paper_artifact="Section V-C (in-text)",
        description="Software reconfiguration latency and lock contention",
        run=_section5c,
        asserts="latency band, overhead fraction, bursty-app worst cases",
    ),
    Experiment(
        exp_id="rsu-overhead",
        paper_artifact="Section III-B.4 (in-text)",
        description="RSU storage/area/power overhead",
        run=_rsu,
        asserts="103 bits; <0.0001% area; <50 uW at 32 cores",
    ),
    Experiment(
        exp_id="estimators",
        paper_artifact="Section II-B / V-A (extension)",
        description="BL vs duration-weighted BL vs static annotations",
        run=_estimators,
        asserts="WBL >= BL on average; fixes the duration-blindness limitation",
    ),
    Experiment(
        exp_id="degradation",
        paper_artifact="Section VI related work (extension)",
        description="Policy slowdown under injected machine faults",
        run=_degradation,
        asserts="deterministic chaos ladder; per-policy graceful degradation",
    ),
    Experiment(
        exp_id="latency",
        paper_artifact="Section VI related work (extension)",
        description="Tail latency and QoS under open-loop multi-tenant arrivals",
        run=_latency,
        asserts="deterministic p50/p95/p99 and QoS-violation tables per policy",
    ),
    Experiment(
        exp_id="scaling",
        paper_artifact="Abstract (extension)",
        description="Software vs hardware reconfiguration cost vs core count",
        run=_scaling,
        asserts="lock waits grow with cores; RSU advantage persists",
    ),
)


def list_experiments() -> list[Experiment]:
    return list(EXPERIMENTS)


def run_experiment(
    exp_id: str,
    scale: float = 1.0,
    seeds: Optional[tuple[int, ...]] = None,
    jobs: int = 1,
    cache_dir: Optional[str] = None,
    verbose: bool = False,
    batch_cells: int = 1,
) -> str:
    """Run one experiment by id and return its rendered artifact."""
    ctx = RunContext(
        scale=scale,
        seeds=seeds if seeds is not None else (1, 2, 3),
        jobs=jobs,
        cache_dir=cache_dir,
        verbose=verbose,
        batch_cells=batch_cells,
    )
    for exp in EXPERIMENTS:
        if exp.exp_id == exp_id:
            return exp.run(ctx)
    known = ", ".join(e.exp_id for e in EXPERIMENTS)
    raise ValueError(f"unknown experiment {exp_id!r}; known: {known}")
