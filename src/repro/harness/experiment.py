"""Experiment registry — every reproducible artifact, addressable by id.

One descriptor per paper artifact (and per extension study), each knowing
how to run itself and render its result.  The CLI's ``experiments`` command
and external scripts drive reproduction through this table instead of
importing individual harness modules.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from .estimators import run_estimator_study
from .figure4 import run_figure4
from .figure5 import run_figure5
from .rsu_overhead import render_rsu_overhead, run_rsu_overhead
from .runner import GridRunner
from .scaling import render_scaling_study, run_scaling_study
from .section5c import render_section5c, run_section5c
from .table1 import render_table1

__all__ = ["Experiment", "EXPERIMENTS", "run_experiment", "list_experiments"]


@dataclass(frozen=True)
class Experiment:
    """One regenerable artifact."""

    exp_id: str
    paper_artifact: str
    description: str
    #: (scale, seeds) -> rendered text.  ``asserts`` names what is checked.
    run: Callable[[float, tuple[int, ...]], str]
    asserts: str = ""


def _table1(scale: float, seeds: tuple[int, ...]) -> str:
    return render_table1()


def _figure4(scale: float, seeds: tuple[int, ...]) -> str:
    runner = GridRunner(scale=scale, seeds=seeds)
    return run_figure4(runner).render()


def _figure5(scale: float, seeds: tuple[int, ...]) -> str:
    runner = GridRunner(scale=scale, seeds=seeds)
    return run_figure5(runner).render()


def _section5c(scale: float, seeds: tuple[int, ...]) -> str:
    runner = GridRunner(scale=scale, seeds=seeds[:1], trace_enabled=True)
    return render_section5c(run_section5c(runner, fast_cores=16))


def _rsu(scale: float, seeds: tuple[int, ...]) -> str:
    return render_rsu_overhead(run_rsu_overhead())


def _estimators(scale: float, seeds: tuple[int, ...]) -> str:
    runner = GridRunner(scale=scale, seeds=seeds)
    return run_estimator_study(runner).render()


def _scaling(scale: float, seeds: tuple[int, ...]) -> str:
    rows = run_scaling_study(base_scale=scale * 0.7, seeds=seeds)
    return render_scaling_study(rows, "fluidanimate")


EXPERIMENTS: tuple[Experiment, ...] = (
    Experiment(
        exp_id="table1",
        paper_artifact="Table I",
        description="Processor configuration of the simulated machine",
        run=_table1,
        asserts="row-for-row transcription of the paper's table",
    ),
    Experiment(
        exp_id="figure4",
        paper_artifact="Figure 4",
        description="FIFO / CATS+BL / CATS+SA / CATA speedup and EDP",
        run=_figure4,
        asserts="18 Section V-A/V-B shape claims",
    ),
    Experiment(
        exp_id="figure5",
        paper_artifact="Figure 5",
        description="CATA / CATA+RSU / TurboMode speedup and EDP",
        run=_figure5,
        asserts="12 Section V-C/V-D shape claims",
    ),
    Experiment(
        exp_id="section5c",
        paper_artifact="Section V-C (in-text)",
        description="Software reconfiguration latency and lock contention",
        run=_section5c,
        asserts="latency band, overhead fraction, bursty-app worst cases",
    ),
    Experiment(
        exp_id="rsu-overhead",
        paper_artifact="Section III-B.4 (in-text)",
        description="RSU storage/area/power overhead",
        run=_rsu,
        asserts="103 bits; <0.0001% area; <50 uW at 32 cores",
    ),
    Experiment(
        exp_id="estimators",
        paper_artifact="Section II-B / V-A (extension)",
        description="BL vs duration-weighted BL vs static annotations",
        run=_estimators,
        asserts="WBL >= BL on average; fixes the duration-blindness limitation",
    ),
    Experiment(
        exp_id="scaling",
        paper_artifact="Abstract (extension)",
        description="Software vs hardware reconfiguration cost vs core count",
        run=_scaling,
        asserts="lock waits grow with cores; RSU advantage persists",
    ),
)


def list_experiments() -> list[Experiment]:
    return list(EXPERIMENTS)


def run_experiment(
    exp_id: str, scale: float = 1.0, seeds: Optional[tuple[int, ...]] = None
) -> str:
    """Run one experiment by id and return its rendered artifact."""
    if seeds is None:
        seeds = (1, 2, 3)
    for exp in EXPERIMENTS:
        if exp.exp_id == exp_id:
            return exp.run(scale, seeds)
    known = ", ".join(e.exp_id for e in EXPERIMENTS)
    raise ValueError(f"unknown experiment {exp_id!r}; known: {known}")
