"""Tail-latency study: policies under open-loop multi-tenant arrivals.

The paper scores closed-loop batch runs by makespan, but criticality-aware
acceleration earns its keep when tasks *arrive over time* and tenants
contend for the shared power budget (the CuttleSys setting).  This study
runs one multi-tenant scenario (see :mod:`repro.workloads.scenario`)
under each policy across an **arrival-intensity ladder** — every open-loop
tenant's rate multiplied by the intensity — and tabulates per-task
p50/p95/p99 latency plus the per-job QoS-violation rate.

Each (policy, intensity) pair is one ordinary sweep cell: content-addressed
by the canonical scenario spec (which joins the cell key), executed through
the shared :class:`~repro.harness.executor.SweepExecutor`, and therefore
parallel, cached, journaled and bitwise-reproducible like every other
experiment.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from ..sim.config import MachineConfig
from ..workloads.scenario import parse_scenario
from .cache import ResultCache
from .executor import CellSpec, RetryPolicy, SweepExecutor, SweepStats

__all__ = [
    "LATENCY_TENANTS",
    "LATENCY_SMOKE_TENANTS",
    "LATENCY_POLICIES",
    "LATENCY_INTENSITIES",
    "LatencyRow",
    "LatencyResult",
    "run_latency",
]

#: Default two-tenant scenario: a latency-sensitive fork-join stream with a
#: QoS bound sharing the machine with a best-effort pipeline stream.
LATENCY_TENANTS = (
    "web:blackscholes@poisson(rate=0.4,jobs=4)@qos=12ms"
    "+batch:ferret@poisson(rate=0.25,jobs=3)"
)
#: Tiny two-tenant Poisson scenario for the CI smoke path (``--smoke``).
LATENCY_SMOKE_TENANTS = (
    "a:blackscholes@poisson(rate=2,jobs=2)@qos=4ms"
    "+b:swaptions@poisson(rate=1.5,jobs=2)"
)
LATENCY_POLICIES: tuple[str, ...] = ("fifo", "cats_sa", "cata", "cata_rsu")
#: Arrival-rate multipliers applied to every open-loop tenant.
LATENCY_INTENSITIES: tuple[float, ...] = (0.5, 1.0, 2.0)


@dataclass(frozen=True)
class LatencyRow:
    """One (policy, intensity) cell of the study."""

    policy: str
    intensity: float
    #: Canonical scenario spec the cell actually ran (rates scaled).
    scenario: str
    jobs: int
    tasks_executed: int
    latency_p50_ns: float
    latency_p95_ns: float
    latency_p99_ns: float
    qos_violation_rate: float
    exec_time_ns: float
    energy_j: float


@dataclass
class LatencyResult:
    """All rows of one tail-latency study plus its parameters."""

    tenants: str
    fast: int
    seed: int
    scale: float
    intensities: tuple[float, ...]
    rows: list[LatencyRow]
    stats: SweepStats = field(default_factory=SweepStats)

    def row(self, policy: str, intensity: float) -> LatencyRow:
        for r in self.rows:
            if r.policy == policy and r.intensity == intensity:
                return r
        raise KeyError((policy, intensity))

    def to_csv(self) -> str:
        lines = [
            "policy,intensity,p50_ms,p95_ms,p99_ms,qos_violation_rate,"
            "makespan_ms,energy_j,jobs,tasks_executed"
        ]
        for r in self.rows:
            lines.append(
                f"{r.policy},{r.intensity:g},{r.latency_p50_ns / 1e6:.6f},"
                f"{r.latency_p95_ns / 1e6:.6f},{r.latency_p99_ns / 1e6:.6f},"
                f"{r.qos_violation_rate:.6f},{r.exec_time_ns / 1e6:.6f},"
                f"{r.energy_j:.6f},{r.jobs},{r.tasks_executed}"
            )
        return "\n".join(lines)

    def render(self) -> str:
        """Per-intensity table: policies as rows, tail metrics as columns."""
        out: list[str] = [
            "Tail latency under open-loop arrivals "
            f"(fast={self.fast}, seed={self.seed}, scale={self.scale})",
            f"scenario: {self.tenants}",
            "",
        ]
        policies = list(dict.fromkeys(r.policy for r in self.rows))
        header = ["policy", "p50 ms", "p95 ms", "p99 ms", "QoS viol", "makespan ms"]
        widths = [max(12, len(h) + 2) for h in header]
        for intensity in self.intensities:
            out.append(f"== intensity {intensity:g} ==")
            out.append("".join(h.ljust(w) for h, w in zip(header, widths)))
            for policy in policies:
                r = self.row(policy, intensity)
                cells = [
                    policy,
                    f"{r.latency_p50_ns / 1e6:.3f}",
                    f"{r.latency_p95_ns / 1e6:.3f}",
                    f"{r.latency_p99_ns / 1e6:.3f}",
                    f"{r.qos_violation_rate:.2f}",
                    f"{r.exec_time_ns / 1e6:.3f}",
                ]
                out.append("".join(c.ljust(w) for c, w in zip(cells, widths)))
            out.append("")
        return "\n".join(out).rstrip() + "\n"


def run_latency(
    tenants: str = LATENCY_TENANTS,
    policies: Sequence[str] = LATENCY_POLICIES,
    intensities: Sequence[float] = LATENCY_INTENSITIES,
    fast: int = 8,
    seed: int = 1,
    scale: float = 0.3,
    jobs: int = 1,
    cache_dir: Optional[str] = None,
    machine: Optional[MachineConfig] = None,
    verbose: bool = False,
    retry: Optional[RetryPolicy] = None,
    batch_cells: int = 1,
) -> LatencyResult:
    """Run the tail-latency study; one parallel batch over all cells."""
    base = parse_scenario(tenants)
    executor = SweepExecutor(
        jobs=jobs,
        cache=ResultCache(cache_dir) if cache_dir is not None else None,
        machine=machine,
        verbose=verbose,
        retry=retry,
        batch_cells=batch_cells,
    )
    cells: dict[tuple[str, float], CellSpec] = {}
    for intensity in intensities:
        scenario = base.scaled_rates(intensity)
        canonical = scenario.canonical()
        label = scenario.label()
        for policy in policies:
            cells[(policy, intensity)] = CellSpec(
                workload=label,
                policy=policy,
                fast=fast,
                seed=seed,
                scale=scale,
                scenario=canonical,
            )
    results, stats = executor.run_cells(list(cells.values()))

    rows: list[LatencyRow] = []
    for intensity in intensities:
        for policy in policies:
            cell = cells[(policy, intensity)]
            result = results[cell]
            summary = result.extra.get("scenario", {})
            rows.append(
                LatencyRow(
                    policy=policy,
                    intensity=intensity,
                    scenario=cell.scenario,
                    jobs=summary.get("jobs", 0),
                    tasks_executed=result.tasks_executed,
                    latency_p50_ns=result.latency_p50_ns or 0.0,
                    latency_p95_ns=result.latency_p95_ns or 0.0,
                    latency_p99_ns=result.latency_p99_ns or 0.0,
                    qos_violation_rate=result.qos_violation_rate or 0.0,
                    exec_time_ns=result.exec_time_ns,
                    energy_j=result.energy_j,
                )
            )
    return LatencyResult(
        tenants=base.canonical(),
        fast=fast,
        seed=seed,
        scale=scale,
        intensities=tuple(intensities),
        rows=rows,
        stats=stats,
    )
